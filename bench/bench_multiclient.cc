/// \file bench_multiclient.cc
/// \brief Ext-5: the multi-user mode (paper §3.1 calls OCB's multi-user
///        support "almost unique"). Two sections:
///
/// **Latch section** — sweeps CLIENTN over a shared single Database and
/// runs every point in a grid of two axes:
///
///   * concurrency mode — pure-2PL (readers take S locks and queue behind
///     writers) vs MVCC snapshot reads (read-only transactions pin a
///     ReadView and bypass the lock manager);
///   * latching mode — *facade* (SetSerializedPhysical: every operation
///     serializes on one big latch, physical I/O included — the
///     pre-refactor substrate) vs *page* (striped buffer pool + per-frame
///     latches; the catalog latch covers metadata only).
///
/// **Shard section** — sweeps SHARDN × CLIENTN × {2PL, MVCC} over a
/// ShardedDatabase on a *write-heavy* mix (updates/inserts/deletes supply
/// long X-lock holds), reporting per-shard lock wait, the cross-shard
/// transaction fraction and 2PC overhead. The before/after number is
/// aggregate lock-wait time at SHARDN=1 vs SHARDN=4: with per-shard lock
/// managers, version stores and catalogs, lock *hold* times stop paying
/// the single-store singletons, so waiters drain faster.
///
/// **Group-commit section** — CLIENTN=8 on a write-heavy mix, sweeping
/// the commit pipeline's batch cap over {1, 8, 32} on a single Database
/// and on a SHARDN=2 ShardedDatabase. Batch cap 1 is per-transaction
/// commits through the same code path; larger caps let one leader absorb
/// every committer that arrived while its predecessor worked, so the
/// serialized commit-path work — timestamp allocation + version stamping
/// under the version-store commit mutex, and the coordinator commit
/// mutex / in-flight registry on the sharded engine — is paid once per
/// batch instead of once per transaction.
///
/// **I/O section** — CLIENTN=4 on a miss-heavy read storm (scattered
/// GetMany batches plus breadth-first traversals over a buffer pool far
/// smaller than the database) in wall-clock latency-injection mode,
/// sweeping io_workers over {0, 32}. io_workers=0 is the blocking
/// baseline: every miss pays its full device latency inline on the
/// calling thread. io_workers=32 is the async path: GetMany/Traverse
/// issue every batched miss to the worker group before awaiting any, so
/// N misses overlap toward one device latency, and dirty victims retire
/// through the background write-back flusher instead of stalling
/// eviction. The overlap column (serial/charged simulated nanos) shows
/// how much device time genuinely overlapped.
///
/// Environment knobs (CI smoke jobs):
///   OCB_MULTICLIENT_SECTIONS  comma list of "latch","shard","groupcommit",
///                             "wal","io","cc" (default all)
///   OCB_MULTICLIENT_SHARDS    SHARDN list for the shard section
///                             (default "1,2,4")
///   OCB_MULTICLIENT_SMOKE     if set, shrink transaction counts

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "engine/session.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "ocb/client.h"
#include "ocb/generator.h"
#include "ocb/presets.h"
#include "oodb/snapshot.h"
#include "sharding/sharded_database.h"
#include "wal/wal_writer.h"

namespace {

bool SectionEnabled(const char* name) {
  const char* env = std::getenv("OCB_MULTICLIENT_SECTIONS");
  if (env == nullptr || env[0] == '\0') return true;
  return std::strstr(env, name) != nullptr;
}

std::vector<uint32_t> ShardCounts() {
  const char* env = std::getenv("OCB_MULTICLIENT_SHARDS");
  std::vector<uint32_t> out;
  if (env != nullptr && env[0] != '\0') {
    for (const char* p = env; *p != '\0';) {
      char* end = nullptr;
      const long v = std::strtol(p, &end, 10);
      if (end == p) break;
      if (v > 0) out.push_back(static_cast<uint32_t>(v));
      p = *end == ',' ? end + 1 : end;
    }
  }
  if (out.empty()) out = {1, 2, 4};
  return out;
}

bool SmokeMode() {
  const char* env = std::getenv("OCB_MULTICLIENT_SMOKE");
  return env != nullptr && env[0] != '\0';
}

}  // namespace

int main() {
  using namespace ocb;

  bench::PrintHeader("Ext-5",
                     "multi-client scaling (CLIENTN sweep, 2PL vs MVCC, "
                     "facade vs page latching, SHARDN sharding)");

  // Machine-readable output: OCB_BENCH_JSON=path emits one object per
  // sweep point (ci/check_bench_json.py validates the schema);
  // OCB_TRACE=path records the run's txn/lock/latch/2PC spans and dumps
  // a Chrome/Perfetto trace at exit.
  obs::TraceRecorder::InitFromEnvironment();
  bench::BenchJsonSink json("multiclient");

  // Every grid point runs over an identically generated database.
  // Generation is by far the most expensive step, so generate once and
  // re-load the snapshot per point (exactly the campaign workflow the
  // snapshot subsystem exists for).
  StorageOptions storage;
  storage.buffer_pool_pages = 256;
  const bool smoke = SmokeMode();
  const uint64_t cold_txns = smoke ? 30 : 100;
  const uint64_t hot_txns = smoke ? 100 : 400;

  if (SectionEnabled("latch")) {
    const std::string snapshot_path = "bench_multiclient.ocbsnap";
    {
      Database generated(storage);
      OcbPreset preset = presets::Default();
      preset.database.num_objects = 6000;
      preset.database.seed = 29;
      if (!GenerateDatabase(preset.database, &generated).ok()) {
        std::fprintf(stderr, "generation failed\n");
        return 1;
      }
      if (!SaveSnapshot(&generated, snapshot_path).ok()) {
        std::fprintf(stderr, "snapshot save failed\n");
        return 1;
      }
    }

    TextTable table({"Clients", "Mode", "Latching", "Committed", "Aborted",
                     "Lock wait", "Facade wait", "Page wait",
                     "Mean I/Os/attempt", "Hit ratio", "Wall time",
                     "Throughput (txn/s)"});
    std::vector<std::string> per_client_lines;
    std::vector<std::string> gc_lines;
    struct RunPoint {
      double throughput = 0.0;
      uint64_t facade_wait = 0;
      uint64_t page_wait = 0;
    };
    // (clients, mode, page_latches) → outcome, for the summary comparison.
    std::map<std::tuple<uint32_t, std::string, bool>, RunPoint> points;

    for (uint32_t clients : std::vector<uint32_t>{1, 2, 4, 8}) {
      // CLIENTN=1 keeps the seed's serialized legacy path; every
      // multi-client CLIENTN runs both concurrency modes. Every point runs
      // under both latching substrates over fresh, identically generated
      // databases.
      const int modes = clients == 1 ? 1 : 2;
      for (int mode = 0; mode < modes; ++mode) {
        const bool mvcc = mode == 1;
        for (const bool page_latches : {false, true}) {
          Database db(storage);
          if (!LoadSnapshot(&db, snapshot_path).ok()) {
            std::fprintf(stderr, "snapshot load failed\n");
            return 1;
          }
          // The latch substrate under test.
          db.SetSerializedPhysical(!page_latches);
          if (!db.ColdRestart().ok()) return 1;

          OcbPreset preset = presets::Default();
          preset.workload.client_count = clients;
          preset.workload.cold_transactions = cold_txns;
          preset.workload.hot_transactions = hot_txns;
          preset.workload.seed = 31;
          // Read-heavy mix (the paper's traversal-dominated matrix) with
          // enough writes that 2PL readers genuinely queue behind X locks.
          preset.workload.p_set = 0.22;
          preset.workload.p_simple = 0.22;
          preset.workload.p_hierarchy = 0.18;
          preset.workload.p_stochastic = 0.18;
          preset.workload.p_update = 0.12;
          preset.workload.p_insert = 0.05;
          preset.workload.p_delete = 0.03;
          preset.workload.mvcc_snapshot_reads = mvcc;
          // Per-transaction I/O is computed from the disk's own counters
          // over the whole run: per-client deltas overlap under
          // concurrency (see client.h), the device-level count does not.
          const uint64_t reads_before =
              db.disk()->counters(IoScope::kTransaction).reads;
          const obs::MetricsSnapshot obs_before =
              obs::MetricsRegistry::Global().Snapshot();
          auto report = RunMultiClient(&db, preset.workload);
          if (!report.ok()) {
            std::fprintf(stderr, "run failed: %s\n",
                         report.status().ToString().c_str());
            return 1;
          }
          const obs::MetricsSnapshot obs_window =
              obs::MetricsRegistry::Global().Snapshot().Diff(obs_before);
          const uint64_t reads =
              db.disk()->counters(IoScope::kTransaction).reads -
              reads_before;
          const uint64_t txns = report->merged.cold.global.transactions +
                                report->merged.warm.global.transactions;
          // Device-level reads include aborted transactions' work and
          // their undo-log rollback, so normalize by *attempted*
          // transactions — the committed-only divisor would inflate with
          // the abort rate.
          const uint64_t attempted = txns + report->total_aborts();
          const char* mode_name =
              clients == 1 ? "legacy" : (mvcc ? "MVCC" : "2PL-only");
          const char* latch_name = page_latches ? "page" : "facade";
          points[{clients, mode_name, page_latches}] =
              RunPoint{report->throughput_tps(),
                       report->total_facade_wait_nanos(),
                       report->total_page_latch_wait_nanos()};
          if (json.enabled()) {
            json.BeginPoint();
            obs::JsonWriter& w = json.writer();
            w.Field("section", "latch")
                .Field("clients", clients)
                .Field("mode", mode_name)
                .Field("latching", latch_name)
                .Field("committed", txns)
                .Field("aborts", report->total_aborts())
                .Field("abort_rate", report->abort_rate())
                .Field("throughput_tps", report->throughput_tps())
                .Field("wall_micros", report->wall_micros)
                .Field("lock_wait_nanos", report->total_lock_wait_nanos())
                .Field("facade_wait_nanos",
                       report->total_facade_wait_nanos())
                .Field("page_latch_wait_nanos",
                       report->total_page_latch_wait_nanos())
                .Field("mean_ios_per_attempt",
                       attempted == 0 ? 0.0
                                      : static_cast<double>(reads) /
                                            static_cast<double>(attempted))
                .Field("buffer_hit_ratio",
                       report->merged.warm.buffer_hit_ratio());
            w.BeginObject("histograms");
            bench::WriteHistogramJson(w, "lock_wait",
                                      report->lock_wait_histogram());
            bench::WriteHistogramJson(w, "commit_latency",
                                      report->commit_latency_histogram());
            bench::WriteHistogramJson(w, "twopc",
                                      report->twopc_histogram());
            w.EndObject();
            w.Raw("registry", obs_window.ToJson());
            json.EndPoint();
          }
          table.AddRow(
              {Format("%u", clients), mode_name, latch_name,
               Format("%llu", (unsigned long long)txns),
               Format("%llu", (unsigned long long)report->total_aborts()),
               HumanDuration(report->total_lock_wait_nanos()),
               HumanDuration(report->total_facade_wait_nanos()),
               HumanDuration(report->total_page_latch_wait_nanos()),
               Format("%.2f", attempted == 0
                                  ? 0.0
                                  : static_cast<double>(reads) /
                                        static_cast<double>(attempted)),
               Format("%.3f", report->merged.warm.buffer_hit_ratio()),
               HumanDuration(report->wall_micros * 1000),
               Format("%.0f", report->throughput_tps())});
          if (clients > 1 && page_latches) {
            const VersionStoreStats vs = db.version_store()->stats();
            gc_lines.push_back(Format(
                "  CLIENTN=%u %s: %llu versions published, %llu GC'd over "
                "%llu passes, %llu live at end; %llu snapshot txns",
                clients, mode_name,
                (unsigned long long)vs.versions_published,
                (unsigned long long)vs.versions_gced,
                (unsigned long long)vs.gc_passes,
                (unsigned long long)vs.live_versions,
                (unsigned long long)report->total_read_only_commits()));
            for (const ClientOutcome& c : report->per_client) {
              per_client_lines.push_back(Format(
                  "  CLIENTN=%u %s client %u: %llu committed, %llu "
                  "aborted, lock wait %s, facade wait %s, page wait %s, "
                  "%.0f txn/s",
                  clients, mode_name, c.client_id,
                  (unsigned long long)c.committed,
                  (unsigned long long)c.aborts,
                  HumanDuration(c.lock_wait_nanos).c_str(),
                  HumanDuration(c.facade_wait_nanos).c_str(),
                  HumanDuration(c.page_latch_wait_nanos).c_str(),
                  c.throughput_tps()));
            }
          }
        }
      }
    }
    std::remove(snapshot_path.c_str());
    bench::PrintTable(table);

    std::printf("facade-latch vs page-latch (same mix, same data):\n");
    for (uint32_t clients : std::vector<uint32_t>{2, 4, 8}) {
      for (const char* mode_name : {"2PL-only", "MVCC"}) {
        const RunPoint before = points[{clients, mode_name, false}];
        const RunPoint after = points[{clients, mode_name, true}];
        const double speedup =
            before.throughput > 0 ? after.throughput / before.throughput
                                  : 0.0;
        const double wait_reduction =
            after.facade_wait > 0
                ? static_cast<double>(before.facade_wait) /
                      static_cast<double>(after.facade_wait)
                : 0.0;
        const std::string reduction =
            after.facade_wait == 0 ? std::string("eliminated")
                                   : Format("%.1fx less", wait_reduction);
        std::printf(
            "  CLIENTN=%u %s: throughput %.0f -> %.0f txn/s (%.2fx), "
            "facade wait %s -> %s (%s), page wait %s\n",
            clients, mode_name, before.throughput, after.throughput,
            speedup, HumanDuration(before.facade_wait).c_str(),
            HumanDuration(after.facade_wait).c_str(), reduction.c_str(),
            HumanDuration(after.page_wait).c_str());
      }
    }
    std::printf("version-store behaviour (page-latch rows):\n");
    for (const std::string& line : gc_lines) {
      std::printf("%s\n", line.c_str());
    }
    std::printf("per-client breakdown (page-latch rows):\n");
    for (const std::string& line : per_client_lines) {
      std::printf("%s\n", line.c_str());
    }
  }

  if (SectionEnabled("shard")) {
    // --- Shard section: SHARDN × CLIENTN × {2PL, MVCC} ------------------
    const std::vector<uint32_t> shard_counts = ShardCounts();
    const std::string shard_snapshot = "bench_multiclient_shard.ocbsnap";
    TextTable stable({"Shards", "Clients", "Mode", "Committed", "Aborted",
                      "Lock wait", "X-shard txns", "X-shard frac",
                      "2PC time", "Wall time", "Throughput (txn/s)"});
    std::vector<std::string> per_shard_lines;
    std::vector<std::string> tail_lines;
    struct ShardPoint {
      uint64_t lock_wait = 0;
      double throughput = 0.0;
      bool present = false;
    };
    std::map<std::tuple<uint32_t, uint32_t, std::string>, ShardPoint>
        shard_points;

    for (uint32_t shards : shard_counts) {
      // Same seed at every SHARDN: round-robin creation over strided
      // per-shard oid progressions reproduces the identical logical
      // graph, so points differ only in partitioning.
      {
        ShardedDatabase generated(storage, shards);
        OcbPreset preset = presets::Default();
        preset.database.num_objects = 6000;
        preset.database.seed = 29;
        if (!GenerateDatabase(preset.database, &generated).ok()) {
          std::fprintf(stderr, "sharded generation failed\n");
          return 1;
        }
        if (!SaveShardedSnapshot(&generated, shard_snapshot).ok()) {
          std::fprintf(stderr, "sharded snapshot save failed\n");
          return 1;
        }
      }
      for (uint32_t clients : std::vector<uint32_t>{2, 8}) {
        for (const bool mvcc : {false, true}) {
          // Lock-wait at these scales is scheduler-noisy (a handful of
          // multi-ms waits): the CLIENTN=8 points — the headline
          // comparison — run three repetitions and report the
          // median-by-lock-wait rep.
          const int reps = (clients == 8 && !smoke) ? 3 : 1;
          struct Rep {
            MultiClientReport report;
            std::vector<std::string> shard_lines;
          };
          std::vector<Rep> rep_results;
          const char* mode_name = mvcc ? "MVCC" : "2PL-only";
          const obs::MetricsSnapshot obs_before =
              obs::MetricsRegistry::Global().Snapshot();
          for (int rep = 0; rep < reps; ++rep) {
            ShardedDatabase db(storage, shards);
            if (!LoadShardedSnapshot(&db, shard_snapshot).ok()) {
              std::fprintf(stderr, "sharded snapshot load failed\n");
              return 1;
            }
            if (!db.ColdRestart().ok()) return 1;

            OcbPreset preset = presets::Default();
            preset.workload.client_count = clients;
            preset.workload.cold_transactions = cold_txns;
            preset.workload.hot_transactions = hot_txns;
            preset.workload.seed = 41;
            // Write-heavy mix: long X-lock holds (updates, neighborhood-
            // locking deletes, reference-wiring inserts) are what make
            // single-store lock waits pile up in the first place.
            preset.workload.p_set = 0.15;
            preset.workload.p_simple = 0.15;
            preset.workload.p_hierarchy = 0.10;
            preset.workload.p_stochastic = 0.10;
            preset.workload.p_update = 0.30;
            preset.workload.p_insert = 0.12;
            preset.workload.p_delete = 0.08;
            preset.workload.mvcc_snapshot_reads = mvcc;
            auto report = RunMultiClient(&db, preset.workload);
            if (!report.ok()) {
              std::fprintf(stderr, "sharded run failed: %s\n",
                           report.status().ToString().c_str());
              return 1;
            }
            Rep result;
            result.report = std::move(report).value();
            if (clients == 8) {
              for (uint32_t k = 0; k < shards; ++k) {
                const LockManagerStats ls =
                    db.shard(k)->lock_manager()->stats();
                result.shard_lines.push_back(Format(
                    "  SHARDN=%u %s shard %u: lock wait %s over %llu "
                    "waits, %llu deadlocks, %llu timeouts",
                    shards, mode_name, k,
                    HumanDuration(ls.total_wait_nanos).c_str(),
                    (unsigned long long)ls.waits,
                    (unsigned long long)ls.deadlocks,
                    (unsigned long long)ls.timeouts));
              }
            }
            rep_results.push_back(std::move(result));
          }
          std::sort(rep_results.begin(), rep_results.end(),
                    [](const Rep& a, const Rep& b) {
                      return a.report.total_lock_wait_nanos() <
                             b.report.total_lock_wait_nanos();
                    });
          // Window over all reps (per-rep windows would interleave with
          // nothing — each rep owns the process between the snapshots).
          const obs::MetricsSnapshot obs_window =
              obs::MetricsRegistry::Global().Snapshot().Diff(obs_before);
          const Rep& median = rep_results[rep_results.size() / 2];
          const MultiClientReport& report = median.report;
          const uint64_t txns = report.merged.cold.global.transactions +
                                report.merged.warm.global.transactions;
          if (json.enabled()) {
            json.BeginPoint();
            obs::JsonWriter& w = json.writer();
            w.Field("section", "shard")
                .Field("shards", shards)
                .Field("clients", clients)
                .Field("mode", mode_name)
                .Field("reps", reps)
                .Field("committed", txns)
                .Field("aborts", report.total_aborts())
                .Field("abort_rate", report.abort_rate())
                .Field("throughput_tps", report.throughput_tps())
                .Field("wall_micros", report.wall_micros)
                .Field("lock_wait_nanos", report.total_lock_wait_nanos())
                .Field("cross_shard_commits",
                       report.total_cross_shard_commits())
                .Field("cross_shard_fraction",
                       report.cross_shard_fraction())
                .Field("twopc_nanos", report.total_twopc_nanos());
            w.BeginObject("histograms");
            bench::WriteHistogramJson(w, "lock_wait",
                                      report.lock_wait_histogram());
            bench::WriteHistogramJson(w, "commit_latency",
                                      report.commit_latency_histogram());
            bench::WriteHistogramJson(w, "twopc",
                                      report.twopc_histogram());
            w.EndObject();
            w.Raw("registry", obs_window.ToJson());
            json.EndPoint();
          }
          shard_points[{shards, clients, mode_name}] =
              ShardPoint{report.total_lock_wait_nanos(),
                         report.throughput_tps(), true};
          stable.AddRow(
              {Format("%u", shards), Format("%u", clients), mode_name,
               Format("%llu", (unsigned long long)txns),
               Format("%llu", (unsigned long long)report.total_aborts()),
               HumanDuration(report.total_lock_wait_nanos()),
               Format("%llu", (unsigned long long)
                                  report.total_cross_shard_commits()),
               Format("%.1f%%", report.cross_shard_fraction() * 100.0),
               HumanDuration(report.total_twopc_nanos()),
               HumanDuration(report.wall_micros * 1000),
               Format("%.0f", report.throughput_tps())});
          for (const std::string& line : median.shard_lines) {
            per_shard_lines.push_back(line);
          }
          if (clients == 8) {
            const Histogram lw = report.lock_wait_histogram();
            const Histogram cl = report.commit_latency_histogram();
            const Histogram tp = report.twopc_histogram();
            tail_lines.push_back(Format(
                "  SHARDN=%u %s: lock wait p50 %s p95 %s p99 %s; commit "
                "latency p50 %s p95 %s p99 %s; 2pc p50 %s p95 %s p99 %s",
                shards, mode_name,
                HumanDuration(lw.Percentile(50)).c_str(),
                HumanDuration(lw.Percentile(95)).c_str(),
                HumanDuration(lw.Percentile(99)).c_str(),
                HumanDuration(cl.Percentile(50)).c_str(),
                HumanDuration(cl.Percentile(95)).c_str(),
                HumanDuration(cl.Percentile(99)).c_str(),
                HumanDuration(tp.Percentile(50)).c_str(),
                HumanDuration(tp.Percentile(95)).c_str(),
                HumanDuration(tp.Percentile(99)).c_str()));
          }
        }
      }
      for (uint32_t k = 0; k < shards; ++k) {
        std::remove((shard_snapshot + Format(".shard%u", k)).c_str());
      }
    }
    bench::PrintTable(stable);

    const uint32_t base = shard_counts.front();
    const uint32_t top = shard_counts.back();
    if (top != base) {
      std::printf(
          "sharding win at CLIENTN=8 (write-heavy mix, same data, "
          "median of 3 runs):\n");
      for (const char* mode_name : {"2PL-only", "MVCC"}) {
        const ShardPoint& one = shard_points[{base, 8u, mode_name}];
        const ShardPoint& many = shard_points[{top, 8u, mode_name}];
        if (!one.present || !many.present) continue;
        const double wait_ratio =
            many.lock_wait > 0
                ? static_cast<double>(one.lock_wait) /
                      static_cast<double>(many.lock_wait)
                : 0.0;
        std::printf(
            "  %s: aggregate lock wait %s (SHARDN=%u) -> %s (SHARDN=%u)"
            " (%s), throughput %.0f -> %.0f txn/s\n",
            mode_name, HumanDuration(one.lock_wait).c_str(), base,
            HumanDuration(many.lock_wait).c_str(), top,
            many.lock_wait == 0
                ? "eliminated"
                : Format("%.1fx less", wait_ratio).c_str(),
            one.throughput, many.throughput);
      }
    }
    std::printf(
      "per-shard lock managers (CLIENTN=8 rows, median run):\n");
    for (const std::string& line : per_shard_lines) {
      std::printf("%s\n", line.c_str());
    }
    std::printf(
        "per-transaction tails (CLIENTN=8 rows, median run — sums above "
        "hide what victim policies and 2PC actually cost per txn):\n");
    for (const std::string& line : tail_lines) {
      std::printf("%s\n", line.c_str());
    }
  }

  if (SectionEnabled("groupcommit")) {
    // --- Group-commit section: commit-pipeline batch cap ∈ {1, 8, 32} --
    //
    // A commit *storm*: CLIENTN=8 client threads each write a disjoint
    // object inside a Session transaction and then hit Commit together
    // (barrier-aligned rounds). Every commit carries a pending version
    // to stamp, so the serialized commit-path work — timestamp draw +
    // stamping under the version-store commit mutex, plus the
    // coordinator commit mutex and in-flight registry on the sharded
    // engine — is real; the sweep shows how the pipeline's batch cap
    // amortizes it. The storm (rather than the cold/warm protocol) is
    // what makes batches *form* on a single-core host: the protocol's
    // commits are spread across long transactions and rarely collide.
    constexpr uint32_t kGcClients = 8;
    // Caps > 1 also open a 200 µs accumulation window (the
    // binlog_group_commit_sync_delay idea): on a single-core host the
    // serialized batch work alone is far shorter than a scheduling
    // quantum, so without the window no follower ever lands in the
    // queue and every "batch" is one transaction.
    constexpr uint64_t kGcWindowNanos = 200'000;
    // Simulated commit-record force: ~1 ms (a sequential log write on
    // the 1998 disk — no seek), charged once per commit batch. This is
    // the cost group commit classically amortizes.
    constexpr uint64_t kGcLogForceNanos = 1'000'000;
    const uint32_t gc_rounds = smoke ? 50 : 400;
    StorageOptions gc_storage = storage;
    gc_storage.commit_log_force_nanos = kGcLogForceNanos;
    TextTable gtable({"Engine", "Batch cap", "Commits", "Batches",
                      "Mean batch", "Max batch", "Batch work",
                      "ns/commit", "Log force (sim)", "Wall time"});
    struct GcPoint {
      uint64_t batch_nanos = 0;
      uint64_t commits = 0;
      uint64_t log_nanos = 0;
    };
    std::map<std::pair<std::string, uint32_t>, GcPoint> gc_points;

    // One storm over any engine the Session API speaks for.
    auto run_storm = [&](auto& db, const std::vector<Oid>& sources,
                         const std::vector<Oid>& targets) {
      std::barrier sync(static_cast<std::ptrdiff_t>(kGcClients));
      std::vector<std::thread> clients;
      for (uint32_t c = 0; c < kGcClients; ++c) {
        clients.emplace_back([&, c]() {
          auto session = db.OpenSession();
          for (uint32_t round = 0; round < gc_rounds; ++round) {
            auto txn = session.Begin();
            // Disjoint footprints: no lock conflicts, only commit-path
            // contention. Alternate the slot so every round writes.
            (void)txn.SetReference(sources[c], round % 2,
                                   round % 4 < 2 ? targets[c]
                                                 : kInvalidOid);
            sync.arrive_and_wait();  // Commit together.
            (void)txn.Commit();
          }
        });
      }
      for (auto& t : clients) t.join();
    };
    auto add_row = [&](const std::string& engine, uint32_t cap,
                       const GroupCommitStats& gc, uint64_t log_nanos,
                       uint64_t wall_nanos,
                       const obs::MetricsSnapshot& obs_window) {
      gc_points[{engine, cap}] =
          GcPoint{gc.batch_nanos, gc.commits, log_nanos};
      const uint64_t per_commit =
          gc.commits == 0 ? 0 : gc.batch_nanos / gc.commits;
      gtable.AddRow({engine, Format("%u", cap),
                     Format("%llu", (unsigned long long)gc.commits),
                     Format("%llu", (unsigned long long)gc.batches),
                     Format("%.2f", gc.mean_batch()),
                     Format("%llu", (unsigned long long)gc.max_batch_formed),
                     HumanDuration(gc.batch_nanos),
                     Format("%llu", (unsigned long long)per_commit),
                     HumanDuration(log_nanos),
                     HumanDuration(wall_nanos)});
      if (json.enabled()) {
        json.BeginPoint();
        json.writer()
            .Field("section", "groupcommit")
            .Field("engine", engine)
            .Field("batch_cap", cap)
            .Field("commits", gc.commits)
            .Field("batches", gc.batches)
            .Field("mean_batch", gc.mean_batch())
            .Field("max_batch", gc.max_batch_formed)
            .Field("batch_nanos", gc.batch_nanos)
            .Field("nanos_per_commit", per_commit)
            .Field("log_force_nanos", log_nanos)
            .Field("wall_nanos", wall_nanos)
            .Raw("registry", obs_window.ToJson());
        json.EndPoint();
      }
    };
    auto now_nanos = []() {
      return static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count());
    };

    for (uint32_t cap : std::vector<uint32_t>{1, 8, 32}) {
      // Single store: 8 disjoint source/target pairs.
      Database db(gc_storage);
      OcbPreset preset = presets::Default();
      preset.database.num_classes = 2;
      preset.database.num_objects = 64;
      preset.database.seed = 29;
      if (!GenerateDatabase(preset.database, &db).ok()) return 1;
      db.SetGroupCommitMaxBatch(cap);
      if (cap > 1) db.SetGroupCommitWindow(kGcWindowNanos);
      std::vector<Oid> sources, targets;
      const std::vector<Oid> live = db.LiveOidsSnapshot();
      for (uint32_t c = 0; c < kGcClients; ++c) {
        sources.push_back(live[c]);
        targets.push_back(live[kGcClients + c]);
      }
      const uint64_t sim_start = db.SimNowNanos();
      const obs::MetricsSnapshot obs_before =
          obs::MetricsRegistry::Global().Snapshot();
      const uint64_t start = now_nanos();
      run_storm(db, sources, targets);
      const uint64_t wall = now_nanos() - start;
      // The storm's footprint stays cached after round one, so the sim
      // delta is essentially the commit-record forces.
      add_row("single", cap, db.group_commit_stats(),
              db.SimNowNanos() - sim_start, wall,
              obs::MetricsRegistry::Global().Snapshot().Diff(obs_before));
    }

    for (uint32_t cap : std::vector<uint32_t>{1, 8, 32}) {
      // Sharded: every source/target pair spans both shards, so every
      // commit is a 2PC member going through the coordinator's grouped
      // commit-mutex section.
      ShardedDatabase db(gc_storage, 2);
      OcbPreset preset = presets::Default();
      preset.database.num_classes = 2;
      preset.database.num_objects = 64;
      preset.database.seed = 29;
      if (!GenerateDatabase(preset.database, &db).ok()) return 1;
      db.SetGroupCommitMaxBatch(cap);
      if (cap > 1) db.SetGroupCommitWindow(kGcWindowNanos);
      std::vector<Oid> sources, targets;
      const std::vector<Oid> live = db.LiveOidsSnapshot();
      for (uint32_t c = 0; c < kGcClients; ++c) {
        const Oid source = live[c];
        // A target on the other shard: with 2 shards and dense oids,
        // the neighbour oid routes to the opposite shard.
        const Oid target = live[kGcClients + (c ^ 1u)];
        sources.push_back(source);
        targets.push_back(
            db.router().ShardOf(source) != db.router().ShardOf(target)
                ? target
                : live[kGcClients + c]);
      }
      const uint64_t sim_start = db.SimNowNanos();
      const obs::MetricsSnapshot obs_before =
          obs::MetricsRegistry::Global().Snapshot();
      const uint64_t start = now_nanos();
      run_storm(db, sources, targets);
      const uint64_t wall = now_nanos() - start;
      add_row("SHARDN=2", cap, db.group_commit_stats(),
              db.SimNowNanos() - sim_start, wall,
              obs::MetricsRegistry::Global().Snapshot().Diff(obs_before));
    }
    bench::PrintTable(gtable);

    std::printf(
        "group commit at CLIENTN=8 ('batch work' = wall time inside the "
        "pipeline's serialized sections — timestamp draws, version "
        "stamping, coordinator commit mutex — entered once per batch; "
        "'log force' = simulated commit-record fsyncs at %.1f ms each, "
        "one per batch):\n",
        kGcLogForceNanos / 1e6);
    for (const char* engine : {"single", "SHARDN=2"}) {
      const GcPoint base = gc_points[{engine, 1u}];
      const GcPoint best = gc_points[{engine, 32u}];
      if (base.commits == 0 || best.commits == 0) continue;
      const double section_ratio =
          best.batch_nanos == 0
              ? 0.0
              : static_cast<double>(base.batch_nanos) /
                    static_cast<double>(best.batch_nanos);
      const double log_ratio =
          best.log_nanos == 0 ? 0.0
                              : static_cast<double>(base.log_nanos) /
                                    static_cast<double>(best.log_nanos);
      std::printf(
          "  %s: commit-path time %s batch work + %s log force (cap 1) "
          "-> %s + %s (cap 32): log cost %.1fx less, serialized-section "
          "entries %.1fx fewer%s\n",
          engine, HumanDuration(base.batch_nanos).c_str(),
          HumanDuration(base.log_nanos).c_str(),
          HumanDuration(best.batch_nanos).c_str(),
          HumanDuration(best.log_nanos).c_str(), log_ratio,
          log_ratio,  // Sections == batches == forces by construction.
          section_ratio >= 1.0 ? "" :
          " (per-batch work grows with batch size; the win is the "
          "once-per-batch costs)");
    }
  }

  if (SectionEnabled("wal")) {
    // --- WAL section: real durability on vs off under a commit storm ---
    //
    // Same storm shape as the group-commit section (CLIENTN=8,
    // barrier-aligned commits, batch cap 8) but sweeping the REAL redo
    // WAL: wal=off is the seed's in-memory commit path, wal=on appends
    // every commit's post-images and fsyncs once per batch before acks
    // (plus, sharded, the coordinator marker log of the 2PC
    // choreography). The appends/forces columns come from the writers
    // themselves, so the ratio commits:forces shows the group-commit
    // amortization applied to a real fsync instead of a simulated one.
    constexpr uint32_t kWalClients = 8;
    const uint32_t wal_rounds = smoke ? 50 : 200;
    const char* tmpdir = std::getenv("TMPDIR");
    const std::string wal_base =
        std::string(tmpdir != nullptr && tmpdir[0] != '\0' ? tmpdir
                                                           : "/tmp") +
        Format("/ocb_bench_multiclient_%d.wal", static_cast<int>(getpid()));
    auto remove_wal_files = [&]() {
      std::remove(wal_base.c_str());
      std::remove((wal_base + ".coord").c_str());
      for (uint32_t k = 0; k < 2; ++k) {
        std::remove((wal_base + Format(".shard%u", k)).c_str());
      }
    };
    TextTable wtable({"Engine", "WAL", "Commits", "Batches", "Appends",
                      "Forces", "ns/commit (wall)", "Wall time"});
    auto now_nanos = []() {
      return static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count());
    };
    auto wal_storm = [&](auto& db, const std::vector<Oid>& sources,
                         const std::vector<Oid>& targets) {
      std::barrier sync(static_cast<std::ptrdiff_t>(kWalClients));
      std::vector<std::thread> clients;
      for (uint32_t c = 0; c < kWalClients; ++c) {
        clients.emplace_back([&, c]() {
          auto session = db.OpenSession();
          for (uint32_t round = 0; round < wal_rounds; ++round) {
            auto txn = session.Begin();
            (void)txn.SetReference(sources[c], round % 2,
                                   round % 4 < 2 ? targets[c]
                                                 : kInvalidOid);
            sync.arrive_and_wait();
            (void)txn.Commit();
          }
        });
      }
      for (auto& t : clients) t.join();
    };
    auto add_wal_row = [&](const std::string& engine, bool wal_on,
                           const GroupCommitStats& gc, uint64_t appends,
                           uint64_t forces, uint64_t wall_nanos) {
      const uint64_t per_commit =
          gc.commits == 0 ? 0 : wall_nanos / gc.commits;
      wtable.AddRow({engine, wal_on ? "on" : "off",
                     Format("%llu", (unsigned long long)gc.commits),
                     Format("%llu", (unsigned long long)gc.batches),
                     Format("%llu", (unsigned long long)appends),
                     Format("%llu", (unsigned long long)forces),
                     Format("%llu", (unsigned long long)per_commit),
                     HumanDuration(wall_nanos)});
      if (json.enabled()) {
        json.BeginPoint();
        json.writer()
            .Field("section", "wal")
            .Field("engine", engine)
            .Field("wal", wal_on ? 1 : 0)
            .Field("commits", gc.commits)
            .Field("batches", gc.batches)
            .Field("wal_appends", appends)
            .Field("wal_forces", forces)
            .Field("nanos_per_commit", per_commit)
            .Field("wall_nanos", wall_nanos);
        json.EndPoint();
      }
    };

    for (bool wal_on : {false, true}) {
      remove_wal_files();
      StorageOptions wal_storage = storage;
      if (wal_on) wal_storage.wal_path = wal_base;
      Database db(wal_storage);
      OcbPreset preset = presets::Default();
      preset.database.num_classes = 2;
      preset.database.num_objects = 64;
      preset.database.seed = 29;
      if (!GenerateDatabase(preset.database, &db).ok()) return 1;
      db.SetGroupCommitMaxBatch(8);
      db.SetGroupCommitWindow(200'000);
      std::vector<Oid> sources, targets;
      const std::vector<Oid> live = db.LiveOidsSnapshot();
      for (uint32_t c = 0; c < kWalClients; ++c) {
        sources.push_back(live[c]);
        targets.push_back(live[kWalClients + c]);
      }
      const uint64_t start = now_nanos();
      wal_storm(db, sources, targets);
      const uint64_t wall = now_nanos() - start;
      add_wal_row("single", wal_on, db.group_commit_stats(),
                  wal_on ? db.wal()->appended_records() : 0,
                  wal_on ? db.wal()->forces() : 0, wall);
    }

    for (bool wal_on : {false, true}) {
      remove_wal_files();
      StorageOptions wal_storage = storage;
      if (wal_on) wal_storage.wal_path = wal_base;
      ShardedDatabase db(wal_storage, 2);
      OcbPreset preset = presets::Default();
      preset.database.num_classes = 2;
      preset.database.num_objects = 64;
      preset.database.seed = 29;
      if (!GenerateDatabase(preset.database, &db).ok()) return 1;
      db.SetGroupCommitMaxBatch(8);
      db.SetGroupCommitWindow(200'000);
      std::vector<Oid> sources, targets;
      const std::vector<Oid> live = db.LiveOidsSnapshot();
      for (uint32_t c = 0; c < kWalClients; ++c) {
        const Oid source = live[c];
        const Oid target = live[kWalClients + (c ^ 1u)];
        sources.push_back(source);
        targets.push_back(
            db.router().ShardOf(source) != db.router().ShardOf(target)
                ? target
                : live[kWalClients + c]);
      }
      const uint64_t start = now_nanos();
      wal_storm(db, sources, targets);
      const uint64_t wall = now_nanos() - start;
      uint64_t appends = 0, forces = 0;
      if (wal_on) {
        for (uint32_t k = 0; k < 2; ++k) {
          appends += db.shard(k)->wal()->appended_records();
          forces += db.shard(k)->wal()->forces();
        }
        appends += db.coordinator()->coord_wal()->appended_records();
        forces += db.coordinator()->coord_wal()->forces();
      }
      add_wal_row("SHARDN=2", wal_on, db.group_commit_stats(), appends,
                  forces, wall);
    }
    remove_wal_files();
    bench::PrintTable(wtable);
    std::printf(
        "real WAL at CLIENTN=8, batch cap 8: wal=on appends one redo "
        "record per committed writer and fsyncs once per batch before "
        "any ack (sharded rows add the 2PC participant records and the "
        "coordinator marker log); compare Forces to Commits for the "
        "amortization, wal=off rows for the durability overhead.\n");
  }

  if (SectionEnabled("io")) {
    // --- I/O section: blocking vs async physical I/O under misses ---
    //
    // Wall-clock latency injection (400 µs per page, real sleeps) with a
    // 64-page buffer pool under a database hundreds of pages large, so
    // the scattered GetMany batches and breadth-first traversals below
    // fault many pages per call. io_workers=0 keeps the seed's blocking
    // path: each miss executes inline and the calling thread eats the
    // full device latency, one page at a time. io_workers=16 issues
    // every batched miss to the worker group before awaiting any — the
    // batch completes in ceil(misses/workers) device latencies instead
    // of `misses` — and dirty victims drain through the background
    // write-back flusher off the fetch path. Same storm, same seed, same
    // access sequence; only the I/O submission discipline differs.
    constexpr uint32_t kIoClients = 4;
    constexpr uint32_t kIoBatch = 32;
    const uint32_t io_rounds = smoke ? 6 : 40;
    const std::string io_snapshot = "bench_multiclient_io.ocbsnap";
    {
      Database generated(storage);
      OcbPreset preset = presets::Default();
      preset.database.num_objects = 6000;
      preset.database.seed = 29;
      if (!GenerateDatabase(preset.database, &generated).ok()) {
        std::fprintf(stderr, "generation failed\n");
        return 1;
      }
      if (!SaveSnapshot(&generated, io_snapshot).ok()) {
        std::fprintf(stderr, "snapshot save failed\n");
        return 1;
      }
    }
    TextTable iotable({"Mode", "Workers", "Committed", "Misses", "Overlap",
                       "WB peak", "io.wait p95", "Wall time",
                       "Throughput (txn/s)"});
    auto now_nanos = []() {
      return static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count());
    };
    double blocking_tps = 0.0;
    double async_tps = 0.0;
    for (const uint32_t workers : std::vector<uint32_t>{0, 32}) {
      StorageOptions io_storage = storage;
      io_storage.buffer_pool_pages = 64;
      io_storage.wall_clock_io = true;
      io_storage.read_latency_nanos = 400'000;
      io_storage.write_latency_nanos = 400'000;
      io_storage.io_workers = workers;
      Database db(io_storage);
      if (!LoadSnapshot(&db, io_snapshot).ok()) {
        std::fprintf(stderr, "snapshot load failed\n");
        return 1;
      }
      const std::vector<Oid> live = db.LiveOidsSnapshot();
      // Reads draw from the first half of the extent, the per-client
      // write pairs from the second, so the storm's S locks never meet
      // its X locks and every round commits.
      const size_t half = live.size() / 2;
      std::vector<Oid> sources, targets;
      for (uint32_t c = 0; c < kIoClients; ++c) {
        sources.push_back(live[half + c]);
        targets.push_back(live[half + kIoClients + c]);
      }
      const uint64_t misses_before =
          db.buffer_pool()->stats().misses.load(std::memory_order_relaxed);
      const uint64_t serial_before = db.disk()->serial_io_nanos();
      const uint64_t charged_before = db.disk()->charged_io_nanos();
      const obs::MetricsSnapshot obs_before =
          obs::MetricsRegistry::Global().Snapshot();
      std::atomic<uint64_t> committed{0};
      std::vector<std::thread> clients;
      const uint64_t start = now_nanos();
      for (uint32_t c = 0; c < kIoClients; ++c) {
        clients.emplace_back([&, c]() {
          auto session = db.OpenSession();
          for (uint32_t round = 0; round < io_rounds; ++round) {
            auto txn = session.Begin();
            // Scattered batch: a multiplicative stride walks far apart
            // in oid space, so the batch spans ~kIoBatch distinct pages
            // and each round faults a fresh set.
            std::vector<Oid> batch;
            batch.reserve(kIoBatch);
            for (uint32_t j = 0; j < kIoBatch; ++j) {
              const uint64_t idx =
                  (uint64_t{c} * 1009 + uint64_t{round} * 9176 +
                   uint64_t{j} * 613) %
                  half;
              batch.push_back(live[idx]);
            }
            auto objs = txn.GetMany(batch);
            if (!objs.ok()) continue;  // Deadlock victim: txn is dead.
            if (!objs.value().empty()) {
              TraversePolicy policy;
              policy.kind = TraverseKind::kBreadthFirst;
              if (!txn.Traverse(objs.value().front(), 2, policy).ok()) {
                continue;
              }
            }
            // One reference write per round keeps dirty victims flowing
            // into the background flusher.
            (void)txn.SetReference(sources[c], round % 2,
                                   round % 4 < 2 ? targets[c]
                                                 : kInvalidOid);
            if (txn.Commit().ok()) {
              committed.fetch_add(1, std::memory_order_relaxed);
            }
          }
        });
      }
      for (auto& t : clients) t.join();
      const uint64_t wall = now_nanos() - start;
      const obs::MetricsSnapshot obs_window =
          obs::MetricsRegistry::Global().Snapshot().Diff(obs_before);
      const uint64_t misses =
          db.buffer_pool()->stats().misses.load(std::memory_order_relaxed) -
          misses_before;
      const uint64_t serial = db.disk()->serial_io_nanos() - serial_before;
      const uint64_t charged =
          db.disk()->charged_io_nanos() - charged_before;
      const double overlap =
          charged == 0 ? 1.0
                       : static_cast<double>(serial) /
                             static_cast<double>(charged);
      const uint64_t wb_peak = db.buffer_pool()->writeback_peak_depth();
      const obs::HistogramStats io_wait = obs_window.Histo("io.wait");
      const double tps =
          wall == 0 ? 0.0
                    : static_cast<double>(committed.load()) * 1e9 /
                          static_cast<double>(wall);
      const char* mode_name = workers == 0 ? "blocking" : "async";
      if (workers == 0) {
        blocking_tps = tps;
      } else {
        async_tps = tps;
      }
      iotable.AddRow(
          {mode_name, Format("%u", workers),
           Format("%llu", (unsigned long long)committed.load()),
           Format("%llu", (unsigned long long)misses),
           Format("%.2fx", overlap),
           Format("%llu", (unsigned long long)wb_peak),
           HumanDuration(io_wait.p95),
           HumanDuration(wall),
           Format("%.0f", tps)});
      if (json.enabled()) {
        json.BeginPoint();
        obs::JsonWriter& w = json.writer();
        w.Field("section", "io")
            .Field("mode", mode_name)
            .Field("io_workers", workers)
            .Field("clients", kIoClients)
            .Field("committed", committed.load())
            .Field("throughput_tps", tps)
            .Field("wall_micros", wall / 1000)
            .Field("misses_issued", misses)
            .Field("overlap_ratio", overlap)
            .Field("flusher_peak_depth", wb_peak);
        w.BeginObject("histograms");
        w.BeginObject("io_wait")
            .Field("count", io_wait.count)
            .Field("mean", io_wait.mean())
            .Field("p50", io_wait.p50)
            .Field("p95", io_wait.p95)
            .Field("p99", io_wait.p99)
            .Field("max", io_wait.max)
            .EndObject();
        w.EndObject();
        w.Raw("registry", obs_window.ToJson());
        json.EndPoint();
      }
    }
    std::remove(io_snapshot.c_str());
    bench::PrintTable(iotable);
    if (blocking_tps > 0.0) {
      std::printf(
          "async/blocking wall-clock throughput: %.2fx (acceptance floor "
          "2.00x) — same storm, 400us/page injected latency; the async "
          "row issues each GetMany/frontier batch's misses before "
          "awaiting any and retires dirty victims through the background "
          "flusher.\n",
          async_tps / blocking_tps);
    }
  }

  if (SectionEnabled("cc")) {
    // --- CC section: CC_ALG × CLIENTN on read-mostly vs write-hot -------
    //
    // The concurrency-control axis (TxnOptions::cc): one storm run three
    // times, every transaction under strict 2PL, then snapshot-isolation
    // writers, then Silo OCC. Read-mostly (eight scattered reads, an
    // occasional write into the big pool) is the optimistic algorithms'
    // home turf: their reads take no locks and never queue behind the
    // writers' X locks, and validation almost always succeeds. Write-hot
    // (every transaction read-modify-writes two objects of a
    // 16-object hot set) inverts it: 2PL serializes on the locks and
    // commits nearly everything it admits, while SI/OCC do the work
    // first and throw it away at validation — the crossover that makes
    // CC a per-transaction choice instead of an engine property.
    constexpr uint32_t kCcHotSet = 16;
    constexpr uint32_t kCcReadBatch = 8;
    const uint32_t cc_rounds = smoke ? 30 : 200;
    const std::string cc_snapshot = "bench_multiclient_cc.ocbsnap";
    {
      Database generated(storage);
      OcbPreset preset = presets::Default();
      preset.database.num_objects = 2000;
      preset.database.seed = 29;
      if (!GenerateDatabase(preset.database, &generated).ok()) {
        std::fprintf(stderr, "generation failed\n");
        return 1;
      }
      if (!SaveSnapshot(&generated, cc_snapshot).ok()) {
        std::fprintf(stderr, "snapshot save failed\n");
        return 1;
      }
    }
    TextTable ctable({"Mix", "Clients", "CC", "Committed", "Conflicts",
                      "Abort rate", "Wall time", "Throughput (txn/s)"});
    struct CcPoint {
      double tps = 0.0;
      double abort_rate = 0.0;
      bool present = false;
    };
    std::map<std::pair<std::string, std::string>, CcPoint> cc_points;
    auto now_nanos = []() {
      return static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count());
    };
    const CcAlgorithm algos[] = {CcAlgorithm::kStrict2PL,
                                 CcAlgorithm::kSnapshotIsolation,
                                 CcAlgorithm::kSiloOCC};
    for (const char* mix : {"read-mostly", "write-hot"}) {
      const bool write_hot = std::strcmp(mix, "write-hot") == 0;
      for (uint32_t clients : std::vector<uint32_t>{2, 8}) {
        for (const CcAlgorithm cc : algos) {
          Database db(storage);
          if (!LoadSnapshot(&db, cc_snapshot).ok()) {
            std::fprintf(stderr, "snapshot load failed\n");
            return 1;
          }
          const std::vector<Oid> live = db.LiveOidsSnapshot();
          std::atomic<uint64_t> committed{0};
          std::atomic<uint64_t> conflicts{0};
          const obs::MetricsSnapshot obs_before =
              obs::MetricsRegistry::Global().Snapshot();
          std::vector<std::thread> workers;
          // Without the start barrier a short storm runs serially —
          // each thread finishes before the next one spawns — and the
          // contention being measured never happens.
          std::barrier start_sync(static_cast<std::ptrdiff_t>(clients));
          const uint64_t start = now_nanos();
          for (uint32_t c = 0; c < clients; ++c) {
            workers.emplace_back([&, c]() {
              auto session = db.OpenSession();
              TxnOptions options;
              options.cc = cc;
              std::mt19937 rng(17 + c);
              start_sync.arrive_and_wait();
              for (uint32_t round = 0; round < cc_rounds; ++round) {
                auto txn = session.Begin(options);
                bool lost = false;
                if (write_hot) {
                  // Two hot-set read-modify-writes, ascending (a fair
                  // deterministic lock order for the 2PL rows).
                  uint32_t i = rng() % kCcHotSet;
                  uint32_t j = rng() % kCcHotSet;
                  if (i == j) j = (j + 1) % kCcHotSet;
                  if (j < i) std::swap(i, j);
                  for (const uint32_t idx : {i, j}) {
                    auto obj = txn.Get(live[idx]);
                    if (!obj.ok()) { lost = true; break; }
                    obj->orefs[0] =
                        round % 2 == 0 ? live[idx] : kInvalidOid;
                    if (!txn.Put(obj.value()).ok()) { lost = true; break; }
                  }
                } else {
                  for (uint32_t j = 0; j < kCcReadBatch && !lost; ++j) {
                    const size_t idx =
                        (size_t{c} * 1009 + size_t{round} * 9176 +
                         size_t{j} * 613) % live.size();
                    if (!txn.Get(live[idx]).ok()) lost = true;
                  }
                  if (!lost && round % kCcReadBatch == c % kCcReadBatch) {
                    const size_t idx = rng() % live.size();
                    auto obj = txn.Get(live[idx]);
                    if (obj.ok()) {
                      obj->orefs[0] = round % 2 == 0 ? live[idx]
                                                     : kInvalidOid;
                      if (!txn.Put(obj.value()).ok()) lost = true;
                    } else {
                      lost = true;
                    }
                  }
                }
                if (lost) {
                  conflicts.fetch_add(1, std::memory_order_relaxed);
                  (void)txn.Abort();
                  continue;
                }
                if (txn.Commit().ok()) {
                  committed.fetch_add(1, std::memory_order_relaxed);
                } else {
                  conflicts.fetch_add(1, std::memory_order_relaxed);
                }
              }
            });
          }
          for (auto& w : workers) w.join();
          const uint64_t wall = now_nanos() - start;
          const obs::MetricsSnapshot obs_window =
              obs::MetricsRegistry::Global().Snapshot().Diff(obs_before);
          const uint64_t done = committed.load();
          const uint64_t lost = conflicts.load();
          const double abort_rate =
              done + lost == 0
                  ? 0.0
                  : static_cast<double>(lost) /
                        static_cast<double>(done + lost);
          const double tps =
              wall == 0 ? 0.0
                        : static_cast<double>(done) * 1e9 /
                              static_cast<double>(wall);
          const char* algo = CcAlgorithmToString(cc);
          if (clients == 8) {
            cc_points[{mix, algo}] = CcPoint{tps, abort_rate, true};
          }
          ctable.AddRow({mix, Format("%u", clients), algo,
                         Format("%llu", (unsigned long long)done),
                         Format("%llu", (unsigned long long)lost),
                         Format("%.1f%%", abort_rate * 100.0),
                         HumanDuration(wall), Format("%.0f", tps)});
          if (json.enabled()) {
            json.BeginPoint();
            json.writer()
                .Field("section", "cc")
                .Field("algo", algo)
                .Field("mix", mix)
                .Field("clients", clients)
                .Field("committed", done)
                .Field("conflict_aborts", lost)
                .Field("abort_rate", abort_rate)
                .Field("throughput_tps", tps)
                .Field("wall_micros", wall / 1000)
                .Raw("registry", obs_window.ToJson());
            json.EndPoint();
          }
        }
      }
    }
    std::remove(cc_snapshot.c_str());
    bench::PrintTable(ctable);
    std::printf(
        "CC crossover at CLIENTN=8 (conflicts = deadlock victims under "
        "2PL, validation losses under SI/OCC):\n");
    for (const char* mix : {"read-mostly", "write-hot"}) {
      const CcPoint& two_pl = cc_points[{mix, "2pl"}];
      const CcPoint& si = cc_points[{mix, "si"}];
      const CcPoint& occ = cc_points[{mix, "occ"}];
      if (!two_pl.present || !si.present || !occ.present) continue;
      std::printf(
          "  %s: 2PL %.0f txn/s (%.1f%% aborted), SI %.0f (%.1f%%), "
          "OCC %.0f (%.1f%%)\n",
          mix, two_pl.tps, two_pl.abort_rate * 100.0, si.tps,
          si.abort_rate * 100.0, occ.tps, occ.abort_rate * 100.0);
    }
  }

  bench::PrintNote(
      "CLIENTN > 1 runs real std::thread clients over one shared engine. "
      "Latch section: 'facade' re-creates the pre-refactor substrate "
      "(every operation holds one big latch across its physical I/O); "
      "'page' is the striped buffer pool with per-frame reader/writer "
      "latches. Shard section: SHARDN independent Database shards — "
      "per-shard lock managers, version stores, buffer pools — behind "
      "hash-by-oid routing; single-shard transactions skip 2PC, "
      "cross-shard ones prepare on every writer shard and commit under "
      "one coordinator timestamp, and MVCC readers pin one global "
      "snapshot point across all shards; the coordinator's global "
      "wait-for graph refuses cross-shard deadlock cycles that no "
      "per-shard detector can see. Caveat (same as the latch section's): "
      "on a single-core host 2PL-only lock wait is object-conflict and "
      "scheduler bound — conflicts are identical at every SHARDN, so "
      "expect parity there and read the sharding win off the MVCC rows; "
      "multi-core hosts overlap the shards' lock holders and shrink "
      "both. See ARCHITECTURE.md.");

  json.Write();
  const std::string trace_path = obs::TraceRecorder::DumpToEnvPath();
  if (!trace_path.empty()) {
    std::printf("trace written: %s (open in ui.perfetto.dev or "
                "chrome://tracing)\n",
                trace_path.c_str());
  }
  return 0;
}
