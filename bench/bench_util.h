/// \file bench_util.h
/// \brief Shared helpers for the table/figure reproduction harnesses.
///
/// Every bench binary prints: the experiment id it reproduces, the
/// configuration (including seeds), the measured table, and — where the
/// paper gives absolute numbers — the paper's values alongside for shape
/// comparison. Absolute magnitudes are not comparable (the substrate is a
/// simulator, not a 1998 SPARC/ELC); the *shape* is the reproduction
/// target (see EXPERIMENTS.md).

#ifndef OCB_BENCH_BENCH_UTIL_H_
#define OCB_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/json_writer.h"
#include "obs/metrics_registry.h"
#include "util/format.h"
#include "util/stats.h"

namespace ocb {
namespace bench {

inline void PrintHeader(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void PrintNote(const std::string& note) {
  std::printf("note: %s\n", note.c_str());
}

inline void PrintTable(const TextTable& table) {
  std::printf("%s", table.ToString().c_str());
}

/// Serializes a util/stats.h histogram as {"count","mean","p50","p95",
/// "p99","max"} under \p key — the shared shape of every histogram in
/// BENCH_*.json (ci/check_bench_json.py validates it).
inline void WriteHistogramJson(obs::JsonWriter& w, const char* key,
                               const Histogram& h) {
  w.BeginObject(key)
      .Field("count", h.count())
      .Field("mean", h.mean())
      .Field("p50", h.Percentile(50))
      .Field("p95", h.Percentile(95))
      .Field("p99", h.Percentile(99))
      .Field("max", h.max())
      .EndObject();
}

/// \brief Machine-readable bench output (env OCB_BENCH_JSON=path).
///
/// When the env var is set, the bench appends one JSON object per sweep
/// point into a "sweep" array and writes the document at scope exit:
///
///   {"bench": "<name>", "schema_version": 1,
///    "sweep": [{"section": ..., "clients": ..., "throughput_tps": ...,
///               "aborts": ..., "histograms": {...}, "registry": {...}},
///              ...]}
///
/// Usage: construct once in main; per sweep point call BeginPoint(),
/// add fields through writer() (including WriteHistogramJson and
/// MetricsSnapshot::ToJson via Raw), then EndPoint(). Disabled (env
/// unset) every method is a no-op, so bench code carries no ifs.
class BenchJsonSink {
 public:
  explicit BenchJsonSink(const std::string& bench_name) {
    const char* path = std::getenv("OCB_BENCH_JSON");
    if (path == nullptr || path[0] == '\0') return;
    path_ = path;
    writer_.BeginObject();
    writer_.Field("bench", bench_name);
    writer_.Field("schema_version", uint64_t{1});
    writer_.BeginArray("sweep");
  }

  ~BenchJsonSink() { Write(); }

  BenchJsonSink(const BenchJsonSink&) = delete;
  BenchJsonSink& operator=(const BenchJsonSink&) = delete;

  bool enabled() const { return !path_.empty(); }

  void BeginPoint() {
    if (enabled()) writer_.BeginObject();
  }
  void EndPoint() {
    if (enabled()) writer_.EndObject();
  }

  /// The underlying writer; only touch between BeginPoint/EndPoint and
  /// only when enabled().
  obs::JsonWriter& writer() { return writer_; }

  /// Closes the document and writes the file (idempotent; also run by
  /// the destructor). Returns false on I/O error or when disabled.
  bool Write() {
    if (!enabled() || written_) return false;
    written_ = true;
    writer_.EndArray();
    writer_.EndObject();
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "OCB_BENCH_JSON: cannot open %s\n",
                   path_.c_str());
      return false;
    }
    const std::string& json = writer_.str();
    const size_t n = std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    if (n == json.size()) {
      std::printf("bench json written: %s\n", path_.c_str());
      return true;
    }
    return false;
  }

 private:
  std::string path_;
  obs::JsonWriter writer_;
  bool written_ = false;
};

}  // namespace bench
}  // namespace ocb

#endif  // OCB_BENCH_BENCH_UTIL_H_
