/// \file bench_util.h
/// \brief Shared helpers for the table/figure reproduction harnesses.
///
/// Every bench binary prints: the experiment id it reproduces, the
/// configuration (including seeds), the measured table, and — where the
/// paper gives absolute numbers — the paper's values alongside for shape
/// comparison. Absolute magnitudes are not comparable (the substrate is a
/// simulator, not a 1998 SPARC/ELC); the *shape* is the reproduction
/// target (see EXPERIMENTS.md).

#ifndef OCB_BENCH_BENCH_UTIL_H_
#define OCB_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "util/format.h"

namespace ocb {
namespace bench {

inline void PrintHeader(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void PrintNote(const std::string& note) {
  std::printf("note: %s\n", note.c_str());
}

inline void PrintTable(const TextTable& table) {
  std::printf("%s", table.ToString().c_str());
}

}  // namespace bench
}  // namespace ocb

#endif  // OCB_BENCH_BENCH_UTIL_H_
