/// \file bench_genericity.cc
/// \brief Ext-3: the genericity claim (paper §5: "existing benchmark
///        databases might be approximated with OCB's schema, tuned by the
///        appropriate parameters"). Runs each native legacy benchmark next
///        to OCB parameterized to approximate it and compares the I/O
///        behaviour of matched operations.

#include <cstdio>

#include "bench_util.h"
#include "legacy/hypermodel.h"
#include "legacy/oo1.h"
#include "legacy/oo7.h"
#include "ocb/generator.h"
#include "ocb/presets.h"
#include "ocb/protocol.h"

namespace {

ocb::StorageOptions Storage() {
  ocb::StorageOptions storage;
  // Small enough that every database in this bench spills past the cache;
  // a fully-resident database would report 0 I/Os and defeat the
  // comparison.
  storage.buffer_pool_pages = 96;
  return storage;
}

/// Runs an OCB preset (scaled down) and returns warm-run mean I/Os per
/// transaction and objects per transaction.
ocb::Result<std::pair<double, double>> RunPreset(ocb::OcbPreset preset,
                                                 uint64_t objects) {
  preset.database.num_objects = objects;
  preset.workload.cold_transactions = 150;
  preset.workload.hot_transactions = 500;
  ocb::Database db(Storage());
  auto generation = ocb::GenerateDatabase(preset.database, &db);
  if (!generation.ok()) return generation.status();
  OCB_RETURN_NOT_OK(db.ColdRestart());
  ocb::ProtocolRunner runner(&db, preset.workload);
  OCB_ASSIGN_OR_RETURN(ocb::WorkloadMetrics metrics, runner.Run());
  return std::make_pair(metrics.warm.mean_ios_per_transaction(),
                        metrics.warm.global.objects_accessed.mean());
}

}  // namespace

int main() {
  using namespace ocb;

  bench::PrintHeader("Ext-3",
                     "genericity: OCB approximating OO1 / HyperModel / OO7");

  TextTable table({"Benchmark / operation", "Mean I/Os", "Mean objects",
                   "Source"});

  // ---- OO1: native traversal vs OCB-as-OO1 traversal-only preset ----
  {
    OO1Options options;
    options.num_parts = 8000;
    options.ref_zone = 80;
    options.repetitions = 10;
    options.traversal_depth = 5;
    Database db(Storage());
    OO1Benchmark oo1(options);
    if (!oo1.Build(&db).ok() || !db.ColdRestart().ok()) return 1;
    auto traversal = oo1.RunTraversals();
    if (!traversal.ok()) return 1;
    table.AddRow({"OO1 traversal (depth 5)",
                  Format("%.1f", traversal->io_reads.mean()),
                  Format("%.1f", traversal->objects_accessed.mean()),
                  "native"});

    OcbPreset preset = presets::DstcClubApprox(/*ref_zone=*/80);
    preset.workload.simple_depth = 5;
    auto ocb_run = RunPreset(preset, 8000);
    if (!ocb_run.ok()) return 1;
    table.AddRow({"OCB as OO1 traversal (depth 5)",
                  Format("%.1f", ocb_run->first),
                  Format("%.1f", ocb_run->second), "OCB preset"});
    table.AddSeparator();
  }

  // ---- HyperModel: native closure traversal vs OCB approximation ----
  {
    HyperModelOptions options;
    options.fanout = 5;
    options.levels = 5;  // 3906 nodes.
    options.inputs_per_operation = 25;
    options.closure_depth = 3;
    Database db(Storage());
    HyperModelBenchmark hm(options);
    if (!hm.Build(&db).ok() || !db.ColdRestart().ok()) return 1;
    auto closure = hm.ClosureTraversal();
    if (!closure.ok()) return 1;
    table.AddRow(
        {"HyperModel closure (depth 3, per 25 inputs)",
         Format("%.1f", closure->cold_ios),
         Format("%llu", (unsigned long long)closure->objects_touched),
         "native"});

    OcbPreset preset = presets::HyperModelApprox();
    preset.workload.p_set = 0.0;
    preset.workload.p_simple = 1.0;
    preset.workload.p_hierarchy = 0.0;
    preset.workload.p_reverse = 0.0;
    preset.workload.simple_depth = 3;
    auto ocb_run = RunPreset(preset, 3906);
    if (!ocb_run.ok()) return 1;
    table.AddRow({"OCB as HyperModel closure (depth 3, per txn)",
                  Format("%.1f", ocb_run->first),
                  Format("%.1f", ocb_run->second), "OCB preset"});
    table.AddSeparator();
  }

  // ---- OO7: native T6 vs OCB approximation hierarchy traversal ----
  {
    OO7Options options;  // Small configuration.
    Database db(Storage());
    OO7Benchmark oo7(options);
    if (!oo7.Build(&db).ok() || !db.ColdRestart().ok()) return 1;
    auto t6 = oo7.TraversalT6();
    if (!t6.ok()) return 1;
    table.AddRow({"OO7-small T6",
                  Format("%llu", (unsigned long long)t6->io_reads),
                  Format("%llu", (unsigned long long)t6->objects_accessed),
                  "native"});
    auto t1 = oo7.TraversalT1();
    if (!t1.ok()) return 1;
    table.AddRow({"OO7-small T1",
                  Format("%llu", (unsigned long long)t1->io_reads),
                  Format("%llu", (unsigned long long)t1->objects_accessed),
                  "native"});

    OcbPreset preset = presets::OO7SmallApprox();
    auto ocb_run = RunPreset(preset, 12000);
    if (!ocb_run.ok()) return 1;
    table.AddRow({"OCB as OO7-small (mixed workload, per txn)",
                  Format("%.1f", ocb_run->first),
                  Format("%.1f", ocb_run->second), "OCB preset"});
  }

  bench::PrintTable(table);
  bench::PrintNote(
      "the comparison is qualitative (the paper's §5 future-work claim): "
      "OCB presets reach the same order of magnitude of objects touched "
      "and I/Os per matched operation as the native implementations, "
      "without writing a dedicated benchmark.");
  return 0;
}
