/// \file bench_table5_default.cc
/// \brief Reproduces paper Table 5: Texas/DSTC performance measured with
///        OCB under its *default* parameters (Tables 1 + 2).
///
/// Paper values: 31 I/Os before reclustering, 12 after, gain factor 2.58.
///
/// Shape targets: DSTC still clearly wins (gain > 1) but its gain under
/// the diversified four-transaction workload is markedly smaller than the
/// Table 4 gain on the stereotyped CluB traversal workload — the paper's
/// central argument for OCB's diversified workload.

#include <cstdio>

#include "bench_util.h"
#include "clustering/dstc.h"
#include "ocb/experiment.h"

int main() {
  using namespace ocb;

  bench::PrintHeader("Table 5",
                     "DSTC gain under OCB default parameters");

  ExperimentConfig config;
  config.preset = presets::Default();
  // Protocol lengths scaled 1000/10000 -> 300/1500 to keep the harness in
  // seconds; the warm-run mean stabilizes well before that.
  config.preset.workload.cold_transactions = 300;
  config.preset.workload.hot_transactions = 1500;
  config.preset.database.seed = 1998;
  config.preset.workload.seed = 1999;
  config.storage.buffer_pool_pages = 512;  // 2 MB pool vs ~11 MB database.

  DstcOptions options;
  options.observation_period_transactions = 500;
  options.selection_threshold = 1.0;
  Dstc dstc(options);
  auto result = RunBeforeAfterExperiment(config, &dstc);
  if (!result.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  TextTable table({"Benchmark", "I/Os before", "I/Os after", "Gain factor",
                   "Clustering overhead I/Os"});
  table.AddRow(
      {"OCB defaults (measured)", Format("%.1f", result->ios_before()),
       Format("%.1f", result->ios_after()),
       Format("%.2f", result->gain_factor()),
       Format("%llu",
              (unsigned long long)result->clustering_overhead_io)});
  table.AddSeparator();
  table.AddRow({"OCB defaults (paper)", "31", "12", "2.58", "-"});
  bench::PrintTable(table);

  std::printf("\nper-transaction-type detail (warm run, after reclustering):\n");
  std::printf("%s",
              result->after.merged.warm.ToTableString("").c_str());
  bench::PrintNote(Format(
      "shape check: gain > 1 (%s); compare with bench_table4_club — the "
      "diversified workload's gain should be well below the CluB gain "
      "(paper: 2.58 vs 8.71-13.2). Our uniform DIST4 default builds a "
      "random expander graph, which attenuates the absolute gain (~1.1x) "
      "relative to the paper's 2.58 while preserving the direction; see "
      "EXPERIMENTS.md for the analysis.",
      result->gain_factor() > 1.0 ? "PASS" : "FAIL"));
  bench::PrintNote(Format(
      "DSTC stats: %llu reorganizations, %llu objects moved, %llu units, "
      "%llu observed crossings.",
      (unsigned long long)result->policy_stats.reorganizations,
      (unsigned long long)result->policy_stats.objects_moved,
      (unsigned long long)result->policy_stats.clustering_units,
      (unsigned long long)result->policy_stats.observed_crossings));
  return 0;
}
