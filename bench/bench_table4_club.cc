/// \file bench_table4_club.cc
/// \brief Reproduces paper Table 4: Texas/DSTC performance measured with
///        DSTC-CluB vs with OCB tuned to approximate DSTC-CluB (Table 3).
///
/// Paper values:        I/Os before   I/Os after   Gain factor
///   DSTC-CluB              66            5           13.2
///   OCB (as CluB)          61            7            8.71
///
/// Shape targets: both benchmarks show a large I/O gain from DSTC
/// reclustering; OCB-as-CluB's gain is somewhat *smaller* than native
/// CluB's (OCB's varying object sizes make its base slightly less
/// stereotyped); the before/after magnitudes are of the same order on
/// both sides.

#include <cmath>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "clustering/dstc.h"
#include "legacy/club.h"
#include "ocb/experiment.h"

namespace {

constexpr uint64_t kParts = 20000;
constexpr int64_t kRefZone = 200;  // OO1's 1% locality zone for 20k parts.

// CluB re-runs OO1's traversal from a small set of roots — the workload
// stereotypy the paper credits for its outsized gain (§4.3).
constexpr uint32_t kRootPool = 8;

// Each side gets a pool that puts it in the paper's regime — the database
// spills moderately past main memory (8 MB RAM vs ~15 MB DB). The two
// databases differ greatly in size (OO1 reifies connections as objects,
// tripling the population to ~3450 pages, while OCB-as-CluB's direct
// references yield ~570 pages), so the pools are sized per-database.
ocb::StorageOptions ClubStorage() {
  ocb::StorageOptions storage;  // 4 KB pages, as on the paper's testbed.
  storage.buffer_pool_pages = 512;
  return storage;
}

ocb::StorageOptions OcbStorage() {
  ocb::StorageOptions storage;
  storage.buffer_pool_pages = 240;
  return storage;
}

ocb::DstcOptions TunedDstc() {
  ocb::DstcOptions options;
  options.observation_period_transactions = 100;
  options.selection_threshold = 1.0;
  options.unit_link_threshold = 1.0;
  return options;
}

std::string Gain(double g) {
  return std::isinf(g) ? "inf" : ocb::Format("%.2f", g);
}

}  // namespace

int main() {
  using namespace ocb;

  bench::PrintHeader("Table 4",
                     "DSTC gain: native DSTC-CluB vs OCB tuned as CluB");

  // ---- Native DSTC-CluB over the OO1 database ----
  ClubOptions club;
  club.oo1.num_parts = kParts;
  club.oo1.ref_zone = kRefZone;
  club.oo1.seed = 41;
  club.traversal_depth = 7;  // OO1's 3280-part traversal.
  club.warmup_traversals = 150;
  club.measured_traversals = 50;
  club.root_pool_size = kRootPool;
  Database club_db(ClubStorage());
  Dstc club_dstc(TunedDstc());
  auto club_result = RunDstcClub(club, &club_db, &club_dstc);
  if (!club_result.ok()) {
    std::fprintf(stderr, "DSTC-CluB failed: %s\n",
                 club_result.status().ToString().c_str());
    return 1;
  }

  // ---- OCB parameterized per Table 3 ----
  ExperimentConfig ocb_config;
  ocb_config.preset = presets::DstcClubApprox(kRefZone);
  ocb_config.preset.database.seed = 41;
  ocb_config.preset.workload.cold_transactions = 150;
  ocb_config.preset.workload.hot_transactions = 150;
  ocb_config.preset.workload.seed = 43;
  ocb_config.preset.workload.root_pool_size = kRootPool;
  ocb_config.storage = OcbStorage();
  Dstc ocb_dstc(TunedDstc());
  auto ocb_result = RunBeforeAfterExperiment(ocb_config, &ocb_dstc);
  if (!ocb_result.ok()) {
    std::fprintf(stderr, "OCB-as-CluB failed: %s\n",
                 ocb_result.status().ToString().c_str());
    return 1;
  }

  TextTable table({"Benchmark", "I/Os before", "I/Os after", "Gain factor",
                   "Clustering overhead I/Os"});
  table.AddRow({"DSTC-CluB (measured)",
                Format("%.1f", club_result->ios_before),
                Format("%.1f", club_result->ios_after),
                Gain(club_result->gain_factor()),
                Format("%llu",
                       (unsigned long long)
                           club_result->clustering_overhead_io)});
  table.AddRow({"OCB as CluB (measured)",
                Format("%.1f", ocb_result->ios_before()),
                Format("%.1f", ocb_result->ios_after()),
                Gain(ocb_result->gain_factor()),
                Format("%llu",
                       (unsigned long long)
                           ocb_result->clustering_overhead_io)});
  table.AddSeparator();
  table.AddRow({"DSTC-CluB (paper)", "66", "5", "13.2", "-"});
  table.AddRow({"OCB as CluB (paper)", "61", "7", "8.71", "-"});
  bench::PrintTable(table);
  bench::PrintNote(Format(
      "shape check: both gains > 1 (%s), OCB gain <= CluB gain (%s).",
      club_result->gain_factor() > 1.0 && ocb_result->gain_factor() > 1.0
          ? "PASS"
          : "FAIL",
      ocb_result->gain_factor() <= club_result->gain_factor() * 1.15
          ? "PASS"
          : "FAIL"));
  return 0;
}
