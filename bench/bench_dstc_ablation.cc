/// \file bench_dstc_ablation.cc
/// \brief Ext-6: sensitivity of DSTC (the *Tunable* clustering technique)
///        to its tunables — observation period length, selection
///        threshold, and consolidation decay. The paper evaluates DSTC as
///        a black box; this ablation justifies the defaults DstcOptions
///        ships with.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "clustering/dstc.h"
#include "ocb/experiment.h"

namespace {

ocb::ExperimentConfig BaseConfig() {
  ocb::ExperimentConfig config;
  config.preset = ocb::presets::Default();
  config.preset.database.num_objects = 6000;
  config.preset.database.seed = 37;
  config.preset.workload.cold_transactions = 200;
  config.preset.workload.hot_transactions = 600;
  config.preset.workload.seed = 39;
  // A moderately stereotyped workload (16 hot roots) so the tunables have
  // headroom to matter; with fully uniform roots every variant is pinned
  // near gain 1 (see bench_workload_mix Ext-4a).
  config.preset.workload.root_pool_size = 16;
  config.storage.buffer_pool_pages = 160;
  return config;
}

}  // namespace

int main() {
  using namespace ocb;

  bench::PrintHeader("Ext-6", "DSTC tunable-parameter ablation");

  TextTable table({"Variant", "Gain", "Overhead I/Os", "Units",
                   "Consolidated links"});
  struct Variant {
    const char* name;
    DstcOptions options;
  };
  std::vector<Variant> variants;
  {
    Variant v{"defaults (period=100, thr=2, decay=0.8)", DstcOptions{}};
    variants.push_back(v);
  }
  {
    DstcOptions o;
    o.observation_period_transactions = 10;
    variants.push_back({"short periods (10 txns)", o});
  }
  {
    DstcOptions o;
    o.observation_period_transactions = 500;
    variants.push_back({"long periods (500 txns)", o});
  }
  {
    DstcOptions o;
    o.selection_threshold = 8.0;
    variants.push_back({"strict selection (thr=8)", o});
  }
  {
    DstcOptions o;
    o.selection_threshold = 1.0;
    variants.push_back({"permissive selection (thr=1)", o});
  }
  {
    DstcOptions o;
    o.consolidation_decay = 0.0;
    variants.push_back({"no memory (decay=0)", o});
  }
  {
    DstcOptions o;
    o.consolidation_decay = 1.0;
    variants.push_back({"never forget (decay=1)", o});
  }
  {
    DstcOptions o;
    o.max_unit_objects = 4;
    variants.push_back({"tiny units (max 4 objects)", o});
  }
  {
    DstcOptions o;
    o.observe_reverse_crossings = false;
    variants.push_back({"forward crossings only", o});
  }

  for (const Variant& variant : variants) {
    Dstc dstc(variant.options);
    auto result = RunBeforeAfterExperiment(BaseConfig(), &dstc);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", variant.name,
                   result.status().ToString().c_str());
      return 1;
    }
    table.AddRow(
        {variant.name, Format("%.2f", result->gain_factor()),
         Format("%llu",
                (unsigned long long)result->clustering_overhead_io),
         Format("%llu",
                (unsigned long long)result->policy_stats.clustering_units),
         Format("%zu", dstc.consolidated_links())});
  }
  bench::PrintTable(table);
  bench::PrintNote(
      "measured shape: observation periods too short to accumulate "
      "significant statistics hurt most (weights never pass selection); "
      "overly strict selection clusters too little; forgetting everything "
      "between periods (decay=0) discards useful history. The defaults "
      "sit near the top of the gain range at moderate overhead.");
  return 0;
}
