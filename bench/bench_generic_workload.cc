/// \file bench_generic_workload.cc
/// \brief Ext-8: the paper's §5 extension — "extending the transaction
///        set so that it includes a broader range of operations (namely
///        operations we discarded in the first place because they
///        couldn't benefit from clustering)".
///
/// Sweeps the share of non-clusterable operations (updates, inserts,
/// deletes) mixed into the traversal workload and measures how DSTC's
/// gain erodes: write churn both dilutes the usage statistics and decays
/// the physical organization the reorganizer built.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "clustering/dstc.h"
#include "ocb/experiment.h"

namespace {

std::string Gain(double g) {
  return std::isinf(g) ? "inf" : ocb::Format("%.2f", g);
}

}  // namespace

int main() {
  using namespace ocb;

  bench::PrintHeader(
      "Ext-8", "generic transaction set: DSTC gain vs write-churn share");

  TextTable table({"Write share", "I/Os before", "I/Os after", "Gain",
                   "Objects after run"});
  for (double churn : std::vector<double>{0.0, 0.1, 0.2, 0.4}) {
    ExperimentConfig config;
    config.preset = presets::DstcClubApprox(/*ref_zone=*/200);
    config.preset.database.num_objects = 20000;
    config.preset.database.seed = 41;
    WorkloadParameters& wl = config.preset.workload;
    wl.cold_transactions = 150;
    wl.hot_transactions = 150;
    wl.seed = 43;
    wl.root_pool_size = 8;
    wl.simple_depth = 7;
    // Traversals take the remaining probability mass; churn is split
    // between updates, inserts and deletes.
    wl.p_simple = 1.0 - churn;
    wl.p_update = churn / 2.0;
    wl.p_insert = churn / 4.0;
    wl.p_delete = churn / 4.0;
    config.storage.buffer_pool_pages = 240;

    DstcOptions options;
    options.observation_period_transactions = 100;
    options.selection_threshold = 1.0;
    Dstc dstc(options);
    auto result = RunBeforeAfterExperiment(config, &dstc);
    if (!result.ok()) {
      std::fprintf(stderr, "churn %.1f failed: %s\n", churn,
                   result.status().ToString().c_str());
      return 1;
    }
    table.AddRow({Format("%.0f%%", churn * 100.0),
                  Format("%.1f", result->ios_before()),
                  Format("%.1f", result->ios_after()),
                  Gain(result->gain_factor()),
                  Format("%llu",
                         (unsigned long long)
                             result->generation.objects_created)});
  }
  bench::PrintTable(table);
  bench::PrintNote(
      "expected shape: the pure-traversal mix reproduces the Table 4 "
      "regime; as updates/inserts/deletes take over, DSTC's gain erodes — "
      "the paper's rationale for excluding them from the clustering-"
      "oriented workload, and the reason its §5 extension matters for "
      "general-purpose (non-clustering) OODB evaluation.");
  return 0;
}
