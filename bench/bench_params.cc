/// \file bench_params.cc
/// \brief Reproduces paper Tables 1 and 2: the OCB database and workload
///        parameter sets with their default values, printed exactly as the
///        library ships them (asserted against the paper's numbers in
///        tests/ocb/parameters_test.cc).

#include <cstdio>

#include "bench_util.h"
#include "ocb/presets.h"

int main() {
  using namespace ocb;

  bench::PrintHeader("Table 1", "OCB database parameters (defaults)");
  std::printf("%s", DatabaseParameters{}.ToTableString().c_str());

  bench::PrintHeader("Table 2", "OCB workload parameters (defaults)");
  std::printf("%s", WorkloadParameters{}.ToTableString().c_str());

  bench::PrintHeader(
      "Table 3", "OCB database parameters approximating DSTC-CluB");
  const OcbPreset club = presets::DstcClubApprox();
  std::printf("%s", club.database.ToTableString().c_str());
  bench::PrintNote(
      "paper Table 3: NC=2, MAXNREF=3, BASESIZE=50, NO=20000, NREFT=3, "
      "DIST1..3 Constant, DIST4 Special (PartId +/- RefZone).");
  return 0;
}
