/// \file bench_buffer_sweep.cc
/// \brief Ext-2: buffer-size sweep. The paper motivates benchmarks for
///        determining "an optimal hardware configuration (memory buffer
///        size, number of disks...)" (§2); this harness sweeps the buffer
///        pool across the DB-fits/DB-spills boundary, with and without
///        DSTC, showing where clustering stops mattering.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "clustering/dstc.h"
#include "ocb/experiment.h"

int main() {
  using namespace ocb;

  bench::PrintHeader("Ext-2", "buffer-pool size sweep, with/without DSTC");

  const std::vector<size_t> pool_sizes = {32, 64, 128, 256, 512, 1024,
                                          2048};
  TextTable table({"Pool pages", "Pool size", "I/Os (no clustering)",
                   "I/Os (after DSTC)", "DSTC gain", "Hit ratio before"});
  for (size_t pages : pool_sizes) {
    ExperimentConfig config;
    config.preset = presets::Default();
    config.preset.database.num_objects = 8000;
    config.preset.workload.cold_transactions = 150;
    config.preset.workload.hot_transactions = 600;
    config.preset.database.seed = 3;
    config.preset.workload.seed = 5;
    config.storage.buffer_pool_pages = pages;

    Dstc dstc;
    auto result = RunBeforeAfterExperiment(config, &dstc);
    if (!result.ok()) {
      std::fprintf(stderr, "sweep failed at %zu pages: %s\n", pages,
                   result.status().ToString().c_str());
      return 1;
    }
    table.AddRow(
        {Format("%zu", pages), HumanBytes(pages * 4096),
         Format("%.2f", result->ios_before()),
         Format("%.2f", result->ios_after()),
         Format("%.2f", result->gain_factor()),
         Format("%.3f", result->before.merged.warm.buffer_hit_ratio())});
  }
  bench::PrintTable(table);
  bench::PrintNote(
      "expected shape: I/Os fall as the pool grows; DSTC's gain is largest "
      "when the database spills well past the pool and vanishes once the "
      "whole database is cached (the paper's 15 MB DB vs 8 MB RAM regime "
      "sits in the middle of this sweep).");
  return 0;
}
