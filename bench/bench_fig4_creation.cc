/// \file bench_fig4_creation.cc
/// \brief Reproduces paper Fig. 4: database average creation time as a
///        function of database size (10 → 20000 instances) for 1-class,
///        20-class and 50-class schemas.
///
/// Paper shape targets: creation time grows roughly linearly with the
/// number of instances (log-log linear), and a higher class count costs
/// more (the inheritance-graph consistency pass grows with NC). Absolute
/// seconds are 1998-hardware-specific; we report wall time on this
/// machine plus the simulated I/O time and I/O counts, which are
/// machine-independent.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "ocb/generator.h"

int main() {
  using namespace ocb;

  bench::PrintHeader("Fig. 4",
                     "database average creation time vs size and classes");

  const std::vector<uint64_t> sizes = {10, 100, 1000, 10000, 20000};
  const std::vector<uint32_t> class_counts = {1, 20, 50};

  TextTable table({"objects (NO)", "classes (NC)", "wall time",
                   "sim I/O time", "generation I/Os", "pages", "DB size"});
  for (uint32_t nc : class_counts) {
    for (uint64_t no : sizes) {
      StorageOptions storage;  // Paper setup: 4 KB pages, 8 MB pool.
      Database db(storage);
      DatabaseParameters params;
      params.num_classes = nc;
      params.num_objects = no;
      params.seed = 1998;
      auto report = GenerateDatabase(params, &db);
      if (!report.ok()) {
        std::fprintf(stderr, "generation failed: %s\n",
                     report.status().ToString().c_str());
        return 1;
      }
      table.AddRow({Format("%llu", (unsigned long long)no),
                    Format("%u", nc),
                    HumanDuration(report->wall_micros * 1000),
                    HumanDuration(report->sim_nanos),
                    Format("%llu",
                           (unsigned long long)report->generation_ios),
                    Format("%llu", (unsigned long long)report->data_pages),
                    HumanBytes(report->database_bytes)});
    }
    table.AddSeparator();
  }
  bench::PrintTable(table);
  bench::PrintNote(
      "paper Fig. 4 (log-log): near-linear growth in NO; 50-class schemas "
      "cost more than 20-class, which cost more than 1-class. The biggest "
      "paper database (~15 MB, 20000 instances) took ~10^3..10^4 s on the "
      "1998 SPARC/ELC; shape, not absolute seconds, is the target.");
  return 0;
}
