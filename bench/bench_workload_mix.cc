/// \file bench_workload_mix.cc
/// \brief Ext-4: workload-stereotypy ablation explaining the paper's
///        Table 4 vs Table 5 contrast.
///
/// Stereotypy has two axes, swept separately:
///   (a) root repetition — how few distinct roots transactions start
///       from (CluB re-runs its traversal from a handful of roots; OCB's
///       default draws roots uniformly from all 20000 objects);
///   (b) transaction-type diversity — pure depth-first traversals vs the
///       uniform four-type default mix.
/// DSTC's gain should grow as either axis becomes more stereotyped, with
/// root repetition the dominant effect.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "clustering/dstc.h"
#include "ocb/experiment.h"

namespace {

std::string Gain(double g) {
  return std::isinf(g) ? "inf" : ocb::Format("%.2f", g);
}

ocb::ExperimentConfig BaseConfig() {
  ocb::ExperimentConfig config;
  config.preset = ocb::presets::DstcClubApprox(/*ref_zone=*/200);
  config.preset.database.num_objects = 20000;
  config.preset.database.seed = 41;
  config.preset.workload.cold_transactions = 150;
  config.preset.workload.hot_transactions = 150;
  config.preset.workload.seed = 43;
  config.preset.workload.simple_depth = 7;
  config.storage.buffer_pool_pages = 240;
  return config;
}

ocb::Result<ocb::BeforeAfterResult> Run(ocb::ExperimentConfig config) {
  ocb::DstcOptions options;
  options.observation_period_transactions = 100;
  options.selection_threshold = 1.0;
  ocb::Dstc dstc(options);
  return ocb::RunBeforeAfterExperiment(config, &dstc);
}

}  // namespace

int main() {
  using namespace ocb;

  bench::PrintHeader("Ext-4a",
                     "DSTC gain vs root repetition (pure traversals)");
  TextTable roots_table({"Root pool", "I/Os before", "I/Os after", "Gain"});
  for (uint64_t roots : std::vector<uint64_t>{0, 512, 64, 16, 8}) {
    ExperimentConfig config = BaseConfig();
    config.preset.workload.root_pool_size = roots;
    auto result = Run(config);
    if (!result.ok()) {
      std::fprintf(stderr, "failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    roots_table.AddRow({roots == 0 ? "all 20000 (OCB default)"
                                   : Format("%llu", (unsigned long long)roots),
                        Format("%.1f", result->ios_before()),
                        Format("%.1f", result->ios_after()),
                        Gain(result->gain_factor())});
  }
  bench::PrintTable(roots_table);
  bench::PrintNote(
      "expected shape: the fewer distinct roots (more repetition, CluB-"
      "like), the larger DSTC's gain — the working set both concentrates "
      "and becomes predictable.");

  bench::PrintHeader("Ext-4b",
                     "DSTC gain vs transaction-type diversity (8 roots)");
  struct Mix {
    const char* name;
    double p_set, p_simple, p_hier, p_stoch;
  };
  const std::vector<Mix> mixes = {
      {"pure simple traversal (CluB-like)", 0.0, 1.0, 0.0, 0.0},
      {"traversal-heavy", 0.1, 0.7, 0.1, 0.1},
      {"uniform four-type mix (OCB default)", 0.25, 0.25, 0.25, 0.25},
      {"stochastic heavy", 0.1, 0.1, 0.1, 0.7},
  };
  TextTable mix_table({"Workload mix", "I/Os before", "I/Os after", "Gain"});
  for (const Mix& mix : mixes) {
    ExperimentConfig config = BaseConfig();
    config.preset.workload.root_pool_size = 8;
    config.preset.workload.p_set = mix.p_set;
    config.preset.workload.p_simple = mix.p_simple;
    config.preset.workload.p_hierarchy = mix.p_hier;
    config.preset.workload.p_stochastic = mix.p_stoch;
    config.preset.workload.set_depth = 3;
    config.preset.workload.hierarchy_depth = 5;
    config.preset.workload.stochastic_depth = 50;
    auto result = Run(config);
    if (!result.ok()) {
      std::fprintf(stderr, "mix '%s' failed: %s\n", mix.name,
                   result.status().ToString().c_str());
      return 1;
    }
    mix_table.AddRow({mix.name, Format("%.1f", result->ios_before()),
                      Format("%.1f", result->ios_after()),
                      Gain(result->gain_factor())});
  }
  bench::PrintTable(mix_table);
  bench::PrintNote(
      "measured shape: with roots fixed, the gain varies only mildly with "
      "the type mix — root repetition (Ext-4a) is the dominant stereotypy "
      "axis. The paper's Table 5 attenuation (2.58 vs 8.71-13.2) is "
      "reproduced by axis (a): its default workload draws roots uniformly "
      "from all NO objects.");
  return 0;
}
