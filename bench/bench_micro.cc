/// \file bench_micro.cc
/// \brief Ext-7: google-benchmark microbenchmarks of the substrate hot
///        paths — RNG draws, distribution sampling, page operations,
///        buffer-pool hits, object codec, and generator throughput.

#include <benchmark/benchmark.h>

#include "oodb/database.h"
#include "ocb/generator.h"
#include "storage/buffer_pool.h"
#include "util/distribution.h"
#include "util/rng.h"

namespace ocb {
namespace {

void BM_RngNextUint32(benchmark::State& state) {
  LewisPayneRng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextUint32());
  }
}
BENCHMARK(BM_RngNextUint32);

void BM_RngUniformInt(benchmark::State& state) {
  LewisPayneRng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.UniformInt(0, 19999));
  }
}
BENCHMARK(BM_RngUniformInt);

void BM_DistributionDraw(benchmark::State& state) {
  LewisPayneRng rng(1);
  const DistributionSpec specs[] = {
      DistributionSpec::Uniform(), DistributionSpec::Zipf(0.99),
      DistributionSpec::Gaussian(0.15),
      DistributionSpec::SpecialRefZone(100, 0.9)};
  const DistributionSpec& spec = specs[state.range(0)];
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DrawFromDistribution(spec, &rng, 0, 19999, 10000));
  }
}
BENCHMARK(BM_DistributionDraw)->DenseRange(0, 3);

void BM_PageInsertErase(benchmark::State& state) {
  std::vector<uint8_t> buffer(4096);
  Page page(buffer.data(), buffer.size());
  page.Init(0);
  const std::vector<uint8_t> record(static_cast<size_t>(state.range(0)),
                                    0xAB);
  for (auto _ : state) {
    auto slot = page.Insert(record);
    benchmark::DoNotOptimize(slot);
    if (slot.ok()) {
      (void)page.Erase(slot.value());
    } else {
      page.Init(0);
    }
  }
}
BENCHMARK(BM_PageInsertErase)->Arg(50)->Arg(200)->Arg(1000);

void BM_BufferPoolHit(benchmark::State& state) {
  StorageOptions options;
  options.buffer_pool_pages = 8;
  DiskSim disk(options);
  BufferPool pool(&disk, options);
  PageId id;
  { auto h = pool.NewPage(&id); }
  for (auto _ : state) {
    auto h = pool.FetchPage(id);
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_BufferPoolHit);

void BM_ObjectCodecRoundTrip(benchmark::State& state) {
  Object obj;
  obj.class_id = 3;
  obj.orefs.assign(10, 42);
  obj.backrefs.assign(static_cast<size_t>(state.range(0)), 7);
  obj.filler_size = 50;
  std::vector<uint8_t> bytes;
  for (auto _ : state) {
    obj.EncodeTo(&bytes);
    auto decoded = Object::Decode(bytes);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_ObjectCodecRoundTrip)->Arg(0)->Arg(10)->Arg(100);

void BM_ObjectReadThroughDatabase(benchmark::State& state) {
  StorageOptions options;
  Database db(options);
  DatabaseParameters params;
  params.num_classes = 10;
  params.num_objects = 2000;
  params.max_nref = 5;
  auto report = GenerateDatabase(params, &db);
  if (!report.ok()) {
    state.SkipWithError("generation failed");
    return;
  }
  LewisPayneRng rng(5);
  const std::vector<Oid> oids = db.object_store()->LiveOids();
  for (auto _ : state) {
    const Oid oid = oids[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(oids.size()) - 1))];
    auto obj = db.PeekObject(oid);
    benchmark::DoNotOptimize(obj);
  }
}
BENCHMARK(BM_ObjectReadThroughDatabase);

void BM_GenerateDatabase(benchmark::State& state) {
  const uint64_t objects = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    StorageOptions options;
    Database db(options);
    DatabaseParameters params;
    params.num_objects = objects;
    auto report = GenerateDatabase(params, &db);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(objects));
}
BENCHMARK(BM_GenerateDatabase)->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ocb

BENCHMARK_MAIN();
