#!/usr/bin/env bash
# Runs clang-tidy over the engine sources with the curated repo profile
# (.clang-tidy at the repo root). Used by the `clang-tidy` CI job and
# runnable locally:
#
#   ci/run_clang_tidy.sh [build-dir] [source-glob...]
#
# The script configures a throwaway build dir with
# CMAKE_EXPORT_COMPILE_COMMANDS=ON (clang-tidy needs the exact compile
# flags — include paths, -DOCB_* definitions — to parse each TU the way
# the build does), then tidies every first-party .cc under src/.
# Tests are excluded on purpose: gtest macros expand into patterns
# (internal classes, const-ref temporaries) that tidy checks flag
# without any engine bug behind them.
#
# Exits 0 with a notice when clang-tidy is not installed, so the script
# is safe to call from environments that only carry gcc; CI installs
# clang-tidy explicitly and therefore always runs the real thing.
set -euo pipefail

cd "$(dirname "$0")/.."

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not installed; skipping (CI installs it)"
  exit 0
fi

BUILD_DIR="${1:-build-tidy}"

if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
  cmake -B "${BUILD_DIR}" -S . \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    -DOCB_BUILD_TESTS=OFF \
    -DOCB_BUILD_BENCHES=OFF \
    -DOCB_BUILD_EXAMPLES=OFF >/dev/null
fi

# Tidy every first-party translation unit. The .clang-tidy profile at
# the repo root supplies the check list and WarningsAsErrors, so a
# finding here is a hard failure.
mapfile -t SOURCES < <(find src -name '*.cc' | sort)

echo "run_clang_tidy: checking ${#SOURCES[@]} files against .clang-tidy"

FAILED=0
for src in "${SOURCES[@]}"; do
  if ! clang-tidy -p "${BUILD_DIR}" --quiet "${src}"; then
    FAILED=1
  fi
done

if [ "${FAILED}" -ne 0 ]; then
  echo "run_clang_tidy: findings above are errors (WarningsAsErrors: '*')"
  exit 1
fi
echo "run_clang_tidy: clean"
