#!/usr/bin/env python3
"""Schema check for the benches' machine-readable output (OCB_BENCH_JSON).

Usage: check_bench_json.py BENCH_multiclient.json [more.json ...]

Validates the envelope every bench shares:

    {"bench": "<name>", "schema_version": 1, "sweep": [<point>, ...]}

and, per sweep point, the section-specific required keys plus the shared
histogram shape {"count","mean","p50","p95","p99","max"}. Exits non-zero
with a per-file report on any violation — CI runs this against both the
freshly produced file and the committed example
(docs/BENCH_multiclient.example.json), so schema drift breaks the build
instead of silently breaking downstream dashboards.
"""

import json
import sys

HISTOGRAM_KEYS = {"count", "mean", "p50", "p95", "p99", "max"}

# Required scalar keys per section of the multiclient bench. Other
# benches that adopt the sink add their sections here.
SECTION_KEYS = {
    "latch": {
        "clients", "mode", "latching", "committed", "aborts", "abort_rate",
        "throughput_tps", "wall_micros", "lock_wait_nanos",
        "facade_wait_nanos", "page_latch_wait_nanos", "buffer_hit_ratio",
    },
    "shard": {
        "shards", "clients", "mode", "committed", "aborts", "abort_rate",
        "throughput_tps", "wall_micros", "lock_wait_nanos",
        "cross_shard_commits", "cross_shard_fraction", "twopc_nanos",
    },
    "groupcommit": {
        "engine", "batch_cap", "commits", "batches", "mean_batch",
        "max_batch", "batch_nanos", "nanos_per_commit", "log_force_nanos",
        "wall_nanos",
    },
    "wal": {
        "engine", "wal", "commits", "batches", "wal_appends", "wal_forces",
        "nanos_per_commit", "wall_nanos",
    },
    "io": {
        "mode", "io_workers", "clients", "committed", "throughput_tps",
        "wall_micros", "misses_issued", "overlap_ratio",
        "flusher_peak_depth",
    },
    "cc": {
        "algo", "mix", "clients", "committed", "conflict_aborts",
        "abort_rate", "throughput_tps", "wall_micros",
    },
}

# Sections that carry per-point tail distributions, and which
# histograms each must include.
EXPECTED_HISTOGRAMS = {
    "latch": {"lock_wait", "commit_latency", "twopc"},
    "shard": {"lock_wait", "commit_latency", "twopc"},
    "io": {"io_wait"},
}
HISTOGRAM_SECTIONS = set(EXPECTED_HISTOGRAMS)


def check_histogram(errors, where, histo):
    if not isinstance(histo, dict):
        errors.append(f"{where}: histogram is not an object")
        return
    missing = HISTOGRAM_KEYS - histo.keys()
    if missing:
        errors.append(f"{where}: histogram missing keys {sorted(missing)}")
        return
    for key in HISTOGRAM_KEYS:
        if not isinstance(histo[key], (int, float)):
            errors.append(f"{where}.{key}: not a number")
    if histo["count"] > 0:
        if not (histo["p50"] <= histo["p95"] <= histo["p99"] <= histo["max"]):
            errors.append(f"{where}: percentiles not monotonic: {histo}")


def check_registry(errors, where, registry):
    if not isinstance(registry, dict):
        errors.append(f"{where}: registry is not an object")
        return
    for key in ("counters", "histograms"):
        if key not in registry:
            errors.append(f"{where}: registry missing '{key}'")
            return
    for name, value in registry["counters"].items():
        if not isinstance(value, (int, float)):
            errors.append(f"{where}.counters.{name}: not a number")
    for name, histo in registry["histograms"].items():
        check_histogram(errors, f"{where}.histograms.{name}", histo)


def check_point(errors, index, point):
    where = f"sweep[{index}]"
    section = point.get("section")
    if section not in SECTION_KEYS:
        errors.append(f"{where}: unknown or missing section {section!r}")
        return
    missing = SECTION_KEYS[section] - point.keys()
    if missing:
        errors.append(
            f"{where} ({section}): missing keys {sorted(missing)}")
    if section in HISTOGRAM_SECTIONS:
        histograms = point.get("histograms")
        if not isinstance(histograms, dict):
            errors.append(f"{where} ({section}): missing histograms object")
        else:
            for name in EXPECTED_HISTOGRAMS[section] - histograms.keys():
                errors.append(
                    f"{where} ({section}): missing histogram '{name}'")
            for name, histo in histograms.items():
                check_histogram(errors, f"{where}.histograms.{name}", histo)
    if "registry" in point:
        check_registry(errors, f"{where}.registry", point["registry"])
    if "throughput_tps" in point and point.get("committed", 0) > 0:
        if not point["throughput_tps"] > 0:
            errors.append(
                f"{where}: committed {point['committed']} transactions "
                f"but throughput_tps is {point['throughput_tps']}")


def check_file(path):
    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"cannot parse: {e}"]

    if not isinstance(doc.get("bench"), str) or not doc["bench"]:
        errors.append("missing or empty 'bench' name")
    if doc.get("schema_version") != 1:
        errors.append(
            f"schema_version is {doc.get('schema_version')!r}, expected 1")
    sweep = doc.get("sweep")
    if not isinstance(sweep, list) or not sweep:
        errors.append("'sweep' missing, not an array, or empty")
        return errors
    for i, point in enumerate(sweep):
        if not isinstance(point, dict):
            errors.append(f"sweep[{i}]: not an object")
            continue
        check_point(errors, i, point)
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    failed = False
    for path in argv[1:]:
        errors = check_file(path)
        if errors:
            failed = True
            print(f"FAIL {path}:")
            for e in errors:
                print(f"  - {e}")
        else:
            with open(path, encoding="utf-8") as f:
                n = len(json.load(f)["sweep"])
            print(f"OK   {path}: {n} sweep points")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
