// Tests for the GreedyGraphPartitioning and DfsPlacement policies.

#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "clustering/dfs_placement.h"
#include "clustering/greedy_graph.h"

namespace ocb {
namespace {

StorageOptions TestOptions() {
  StorageOptions opts;
  opts.page_size = 1024;
  opts.buffer_pool_pages = 8;
  return opts;
}

Schema OneClassSchema(uint32_t maxnref = 3) {
  Schema schema;
  schema.SetRefTypes(Schema::DefaultTraits(3));
  ClassDescriptor cls;
  cls.id = 0;
  cls.maxnref = maxnref;
  cls.basesize = 40;
  cls.instance_size = 40;
  cls.tref.assign(maxnref, 2);
  cls.cref.assign(maxnref, 0);
  Schema out = std::move(schema);
  EXPECT_TRUE(out.AddClass(std::move(cls)).ok());
  return out;
}

class PoliciesTest : public ::testing::Test {
 protected:
  PoliciesTest() : db_(TestOptions()) {
    db_.SetSchema(OneClassSchema());
    for (int i = 0; i < 50; ++i) {
      auto oid = db_.CreateObject(0);
      EXPECT_TRUE(oid.ok());
      oids_.push_back(*oid);
    }
  }
  Database db_;
  std::vector<Oid> oids_;
};

TEST_F(PoliciesTest, GreedyGraphGroupsHotPairs) {
  GreedyGraphPartitioning policy;
  // Heavy traffic between 0 and 49; light elsewhere.
  for (int t = 0; t < 10; ++t) {
    policy.OnLinkCross(oids_[0], oids_[49], 2, false);
  }
  policy.OnLinkCross(oids_[5], oids_[6], 2, false);
  EXPECT_EQ(policy.graph_edges(), 2u);
  ASSERT_TRUE(policy.Reorganize(&db_).ok());
  EXPECT_EQ(db_.object_store()->Locate(oids_[0])->page_id,
            db_.object_store()->Locate(oids_[49])->page_id);
  EXPECT_GE(policy.stats().reorganizations, 1u);
}

TEST_F(PoliciesTest, GreedyGraphSymmetrizesDirection) {
  GreedyGraphPartitioning policy;
  policy.OnLinkCross(oids_[1], oids_[2], 2, false);
  policy.OnLinkCross(oids_[2], oids_[1], 2, false);
  EXPECT_EQ(policy.graph_edges(), 1u);  // One undirected edge.
}

TEST_F(PoliciesTest, GreedyGraphMinWeightFilters) {
  GreedyGraphOptions options;
  options.min_edge_weight = 5.0;
  GreedyGraphPartitioning policy(options);
  policy.OnLinkCross(oids_[1], oids_[2], 2, false);  // Weight 1 < 5.
  ASSERT_TRUE(policy.Reorganize(&db_).ok());
  EXPECT_EQ(policy.stats().reorganizations, 0u);
}

TEST_F(PoliciesTest, GreedyGraphNoObservationsIsNoOp) {
  GreedyGraphPartitioning policy;
  ASSERT_TRUE(policy.Reorganize(&db_).ok());
  EXPECT_EQ(policy.stats().reorganizations, 0u);
}

TEST_F(PoliciesTest, GreedyGraphPreservesAllObjects) {
  GreedyGraphPartitioning policy;
  for (size_t i = 0; i + 1 < oids_.size(); ++i) {
    policy.OnLinkCross(oids_[i], oids_[i + 1], 2, false);
    policy.OnLinkCross(oids_[i], oids_[i + 1], 2, false);
  }
  ASSERT_TRUE(policy.Reorganize(&db_).ok());
  for (Oid oid : oids_) {
    EXPECT_TRUE(db_.PeekObject(oid).ok()) << "oid " << oid;
  }
  EXPECT_EQ(db_.object_count(), oids_.size());
}

TEST_F(PoliciesTest, DfsPlacementFollowsReferenceOrder) {
  // Wire a chain 0 -> 1 -> 2 ... through slot 0, then scatter placement by
  // reorganizing with a reversed sequence first.
  for (size_t i = 0; i + 1 < 10; ++i) {
    ASSERT_TRUE(db_.SetReference(oids_[i], 0, oids_[i + 1]).ok());
  }
  std::vector<Oid> reversed(oids_.rbegin(), oids_.rend());
  ASSERT_TRUE(db_.object_store()->PlaceSequence(reversed).ok());

  DfsPlacement policy;
  ASSERT_TRUE(policy.Reorganize(&db_).ok());
  EXPECT_EQ(policy.stats().objects_moved, oids_.size());
  // Chain members are now physically ordered root-first.
  std::vector<PageId> pages;
  for (size_t i = 0; i < 10; ++i) {
    pages.push_back(db_.object_store()->Locate(oids_[i])->page_id);
  }
  for (size_t i = 1; i < pages.size(); ++i) {
    EXPECT_GE(pages[i], pages[i - 1]);
  }
}

TEST_F(PoliciesTest, DfsPlacementIgnoresObservations) {
  DfsPlacement policy;
  policy.OnLinkCross(oids_[0], oids_[1], 2, false);
  EXPECT_EQ(policy.stats().observed_crossings, 0u);
}

TEST_F(PoliciesTest, DfsPlacementHandlesCycles) {
  // A reference cycle must not hang the DFS.
  ASSERT_TRUE(db_.SetReference(oids_[0], 0, oids_[1]).ok());
  ASSERT_TRUE(db_.SetReference(oids_[1], 0, oids_[0]).ok());
  DfsPlacement policy;
  ASSERT_TRUE(policy.Reorganize(&db_).ok());
  EXPECT_EQ(db_.object_count(), oids_.size());
  for (Oid oid : oids_) {
    EXPECT_TRUE(db_.PeekObject(oid).ok());
  }
}

TEST_F(PoliciesTest, PolicyNames) {
  EXPECT_EQ(GreedyGraphPartitioning().name(), "GreedyGraph");
  EXPECT_EQ(DfsPlacement().name(), "DFS-Structural");
}

}  // namespace
}  // namespace ocb
