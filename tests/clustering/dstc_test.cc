// Tests for the DSTC clustering policy: observation periods, selection,
// consolidation, unit construction, and physical reorganization.

#include "clustering/dstc.h"

#include <gtest/gtest.h>

#include <vector>

namespace ocb {
namespace {

StorageOptions TestOptions() {
  StorageOptions opts;
  opts.page_size = 1024;
  opts.buffer_pool_pages = 8;
  return opts;
}

Schema OneClassSchema(uint32_t maxnref = 2, uint32_t basesize = 40) {
  Schema schema;
  schema.SetRefTypes(Schema::DefaultTraits(3));
  ClassDescriptor cls;
  cls.id = 0;
  cls.maxnref = maxnref;
  cls.basesize = basesize;
  cls.instance_size = basesize;
  cls.tref.assign(maxnref, 2);
  cls.cref.assign(maxnref, 0);
  Schema out = std::move(schema);
  EXPECT_TRUE(out.AddClass(std::move(cls)).ok());
  return out;
}

/// Simulates one transaction that crosses the given links.
void RunTransaction(Dstc* dstc,
                    const std::vector<std::pair<Oid, Oid>>& links) {
  dstc->OnTransactionBegin();
  for (const auto& [from, to] : links) {
    dstc->OnLinkCross(from, to, 2, false);
  }
  dstc->OnTransactionEnd();
}

TEST(DstcTest, NothingConsolidatedBeforePeriodEnds) {
  DstcOptions options;
  options.observation_period_transactions = 10;
  Dstc dstc(options);
  RunTransaction(&dstc, {{1, 2}, {2, 3}});
  EXPECT_EQ(dstc.consolidated_links(), 0u);
}

TEST(DstcTest, SelectionDropsInsignificantLinks) {
  DstcOptions options;
  options.observation_period_transactions = 4;
  options.selection_threshold = 3.0;
  Dstc dstc(options);
  // Link (1,2) crossed 4 times, link (3,4) once: only the former survives.
  RunTransaction(&dstc, {{1, 2}});
  RunTransaction(&dstc, {{1, 2}});
  RunTransaction(&dstc, {{1, 2}, {3, 4}});
  RunTransaction(&dstc, {{1, 2}});  // Period closes here.
  EXPECT_EQ(dstc.consolidated_links(), 1u);
}

TEST(DstcTest, SelfAndInvalidCrossingsIgnored) {
  Dstc dstc;
  dstc.OnLinkCross(5, 5, 0, false);
  dstc.OnLinkCross(kInvalidOid, 3, 0, false);
  dstc.OnLinkCross(3, kInvalidOid, 0, false);
  EXPECT_EQ(dstc.stats().observed_crossings, 0u);
}

TEST(DstcTest, ReverseCrossingsRespectOption) {
  DstcOptions options;
  options.observe_reverse_crossings = false;
  Dstc dstc(options);
  dstc.OnLinkCross(1, 2, 0, /*reverse=*/true);
  EXPECT_EQ(dstc.stats().observed_crossings, 0u);
  dstc.OnLinkCross(1, 2, 0, /*reverse=*/false);
  EXPECT_EQ(dstc.stats().observed_crossings, 1u);
}

TEST(DstcTest, ConsolidationDecaysOldKnowledge) {
  DstcOptions options;
  options.observation_period_transactions = 1;
  options.selection_threshold = 1.0;
  options.consolidation_decay = 0.5;
  options.unit_link_threshold = 1.0;
  Dstc dstc(options);
  // Period 1: link (1,2) hot.
  RunTransaction(&dstc, {{1, 2}, {1, 2}, {1, 2}, {1, 2}});
  EXPECT_EQ(dstc.consolidated_links(), 1u);
  // Many empty periods: the old weight decays 4 -> 2 -> 1 -> 0.5 -> ...
  // and eventually the noise filter prunes the entry.
  for (int i = 0; i < 8; ++i) RunTransaction(&dstc, {});
  EXPECT_EQ(dstc.consolidated_links(), 0u);
}

TEST(DstcTest, ReorganizeWithoutStatisticsIsANoOp) {
  Database db(TestOptions());
  db.SetSchema(OneClassSchema());
  Dstc dstc;
  ASSERT_TRUE(dstc.Reorganize(&db).ok());
  EXPECT_EQ(dstc.stats().reorganizations, 0u);
}

class DstcReorganizeTest : public ::testing::Test {
 protected:
  DstcReorganizeTest() : db_(TestOptions()) {
    db_.SetSchema(OneClassSchema());
    // 60 objects of ~90 bytes: ~8 per 1 KB page.
    for (int i = 0; i < 60; ++i) {
      auto oid = db_.CreateObject(0);
      EXPECT_TRUE(oid.ok());
      oids_.push_back(*oid);
    }
  }
  Database db_;
  std::vector<Oid> oids_;
};

TEST_F(DstcReorganizeTest, HotPairsEndUpOnTheSamePage) {
  DstcOptions options;
  options.observation_period_transactions = 1;
  options.selection_threshold = 1.0;
  Dstc dstc(options);
  // Objects 0 and 59 start far apart (different pages).
  ASSERT_NE(db_.object_store()->Locate(oids_[0])->page_id,
            db_.object_store()->Locate(oids_[59])->page_id);
  // Observe a hot link between them across several transactions.
  for (int t = 0; t < 5; ++t) {
    RunTransaction(&dstc, {{oids_[0], oids_[59]}});
  }
  ASSERT_TRUE(dstc.Reorganize(&db_).ok());
  EXPECT_EQ(dstc.stats().reorganizations, 1u);
  EXPECT_EQ(db_.object_store()->Locate(oids_[0])->page_id,
            db_.object_store()->Locate(oids_[59])->page_id);
  // Moved objects remain readable and intact.
  EXPECT_TRUE(db_.PeekObject(oids_[0]).ok());
  EXPECT_TRUE(db_.PeekObject(oids_[59]).ok());
}

TEST_F(DstcReorganizeTest, UnitsRespectPageBudget) {
  DstcOptions options;
  options.observation_period_transactions = 1;
  options.selection_threshold = 1.0;
  Dstc dstc(options);
  // A star of links around object 0 far larger than one page can hold.
  std::vector<std::pair<Oid, Oid>> star;
  for (size_t i = 1; i < oids_.size(); ++i) {
    star.push_back({oids_[0], oids_[i]});
  }
  for (int t = 0; t < 3; ++t) RunTransaction(&dstc, star);
  ASSERT_TRUE(dstc.Reorganize(&db_).ok());
  ASSERT_FALSE(dstc.last_units().empty());
  const size_t page_budget = db_.object_store()->max_object_size();
  for (const auto& unit : dstc.last_units()) {
    size_t bytes = 0;
    for (Oid oid : unit) {
      auto obj = db_.PeekObject(oid);
      ASSERT_TRUE(obj.ok());
      bytes += obj->EncodedSize();
    }
    EXPECT_LE(bytes, page_budget);
  }
}

TEST_F(DstcReorganizeTest, MaxUnitObjectsCapRespected) {
  DstcOptions options;
  options.observation_period_transactions = 1;
  options.selection_threshold = 1.0;
  options.max_unit_objects = 3;
  Dstc dstc(options);
  std::vector<std::pair<Oid, Oid>> chain;
  for (size_t i = 0; i + 1 < 10; ++i) {
    chain.push_back({oids_[i], oids_[i + 1]});
  }
  for (int t = 0; t < 3; ++t) RunTransaction(&dstc, chain);
  ASSERT_TRUE(dstc.Reorganize(&db_).ok());
  for (const auto& unit : dstc.last_units()) {
    EXPECT_LE(unit.size(), 3u);
  }
}

TEST_F(DstcReorganizeTest, ReorganizationIoChargedToClusteringScope) {
  DstcOptions options;
  options.observation_period_transactions = 1;
  options.selection_threshold = 1.0;
  Dstc dstc(options);
  for (int t = 0; t < 3; ++t) {
    RunTransaction(&dstc, {{oids_[0], oids_[30]}});
  }
  const uint64_t transaction_before =
      db_.disk()->counters(IoScope::kTransaction).total();
  ASSERT_TRUE(dstc.Reorganize(&db_).ok());
  EXPECT_GT(db_.disk()->counters(IoScope::kClustering).total(), 0u);
  EXPECT_EQ(db_.disk()->counters(IoScope::kTransaction).total(),
            transaction_before);
}

TEST_F(DstcReorganizeTest, ResetStatisticsForgets) {
  DstcOptions options;
  options.observation_period_transactions = 1;
  Dstc dstc(options);
  for (int t = 0; t < 3; ++t) {
    RunTransaction(&dstc, {{oids_[0], oids_[1]}, {oids_[0], oids_[1]}});
  }
  EXPECT_GT(dstc.consolidated_links(), 0u);
  dstc.ResetStatistics();
  EXPECT_EQ(dstc.consolidated_links(), 0u);
  ASSERT_TRUE(dstc.Reorganize(&db_).ok());
  EXPECT_EQ(dstc.stats().reorganizations, 0u);
}

TEST(NoClusteringTest, NeverMoves) {
  Database db(TestOptions());
  db.SetSchema(OneClassSchema());
  auto a = db.CreateObject(0);
  ASSERT_TRUE(a.ok());
  const auto loc_before = db.object_store()->Locate(*a);
  NoClustering policy;
  policy.OnLinkCross(1, 2, 0, false);
  ASSERT_TRUE(policy.Reorganize(&db).ok());
  EXPECT_EQ(policy.stats().reorganizations, 0u);
  EXPECT_EQ(db.object_store()->Locate(*a)->page_id, loc_before->page_id);
  EXPECT_EQ(policy.name(), "NoClustering");
}

}  // namespace
}  // namespace ocb
