// The kill-point harness: the durability contract, tested by actually
// crashing. Each case re-executes this binary as a child in "storm mode"
// (OCB_KILL_CHILD_MODE), where multiple client threads commit linked
// pairs through the session API while OCB_WAL_KILLPOINT arms one of the
// crash-injection points (killpoint.h) — the child dies mid-commit with
// _exit(137), no flushes, no destructors. The parent then recovers a
// fresh engine from the surviving log files and checks the two halves of
// the contract against the child's side log:
//
//   * every ACKNOWLEDGED commit (ack written after Commit() returned OK,
//     i.e. after the WAL force) is fully readable and linked;
//   * every commit the child STARTED but never acked is atomic — wholly
//     present or wholly absent, never half a transaction (and for
//     cross-shard pairs: on all participating shards or none).
//
// A fresh exec per case matters: the kill-point configuration latches on
// first use, so a forked-but-not-exec'd child of a test process that
// already ran a recovery would inherit a disarmed config.
//
// Matrix: {Database, ShardedDatabase(4)} x {pre-force, post-force-pre-ack,
// mid-batch, mid-checkpoint}. Sharded storms create pairs round-robin, so
// every pair is a cross-shard 2PC commit.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/session.h"
#include "oodb/database.h"
#include "oodb/snapshot.h"
#include "sharding/sharded_database.h"
#include "util/format.h"
#include "wal/recovery.h"

namespace ocb {
namespace {

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

Schema TwoClassSchema() {
  Schema schema;
  schema.SetRefTypes(Schema::DefaultTraits(3));
  ClassDescriptor a;
  a.id = 0;
  a.maxnref = 3;
  a.basesize = 40;
  a.instance_size = 40;
  a.tref = {2, 2, 2};
  a.cref = {1, 1, 0};
  ClassDescriptor b;
  b.id = 1;
  b.maxnref = 2;
  b.basesize = 20;
  b.instance_size = 20;
  b.tref = {2, 2};
  b.cref = {0, 0};
  Schema out = std::move(schema);
  EXPECT_TRUE(out.AddClass(std::move(a)).ok());
  EXPECT_TRUE(out.AddClass(std::move(b)).ok());
  return out;
}

constexpr uint32_t kShards = 4;

// ---------------------------------------------------------------------------
// Child side (runs in a fresh exec of this binary; no gtest machinery).

StorageOptions ChildOptions(const char* wal) {
  StorageOptions opts;
  opts.page_size = 1024;
  opts.buffer_pool_pages = 64;
  opts.wal_path = wal;
  return opts;
}

// Commits linked pairs from several client threads, logging an intent
// line before each Commit() and an ack line after it returns OK. Lines
// are fflush'd while the log mutex is held: _exit loses stdio buffers,
// not kernel ones, so a flushed line survives the crash.
template <typename DB>
void StormChild(DB* db, std::FILE* side, int threads, int per_thread) {
  std::mutex mu;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([db, side, per_thread, &mu]() {
      auto session = db->OpenSession();
      for (int i = 0; i < per_thread; ++i) {
        auto txn = session.Begin();
        auto a = txn.Create(0);
        auto b = txn.Create(1);
        if (!a.ok() || !b.ok() || !txn.SetReference(*a, 0, *b).ok()) {
          _exit(3);
        }
        {
          std::lock_guard<std::mutex> lock(mu);
          std::fprintf(side, "I %llu %llu\n",
                       static_cast<unsigned long long>(*a),
                       static_cast<unsigned long long>(*b));
          std::fflush(side);
        }
        if (!txn.Commit().ok()) _exit(3);
        {
          std::lock_guard<std::mutex> lock(mu);
          std::fprintf(side, "A %llu %llu\n",
                       static_cast<unsigned long long>(*a),
                       static_cast<unsigned long long>(*b));
          std::fflush(side);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
}

// The SI/OCC storm: contended Put-based writes (SetReference is
// NotSupported under the optimistic algorithms). Each transaction
// creates a fresh class-1 witness b, points it at a shared contended
// class-0 object a (b.orefs[0] = a), and bumps a.orefs[0] = b — so the
// witness's existence after recovery is exactly the transaction's
// durability evidence, immune to later overwrites of the contended
// slot. Outcomes logged: "I a b" intent, then "A a b" (Commit returned
// OK — must be replayed) or "R a b" (validation abort, WriteConflict or
// deadlock — must be wholly absent, witness included).
//
// The storm opens with one DETERMINISTIC validation abort (a 2PL
// interferer commits between the optimistic transaction's read and its
// commit), so the rejected side of the contract is never vacuously
// checked.
template <typename DB>
void CcStormChild(DB* db, std::FILE* side, int threads, int per_thread,
                  CcAlgorithm cc) {
  std::vector<Oid> shared;
  {
    auto txn = db->OpenSession().Begin();
    for (int i = 0; i < 4; ++i) {
      auto oid = txn.Create(0);
      if (!oid.ok()) _exit(3);
      shared.push_back(*oid);
    }
    if (!txn.Commit().ok()) _exit(3);
  }

  TxnOptions optimistic;
  optimistic.cc = cc;
  std::mutex mu;

  {
    // The guaranteed validation abort: read shared[0] optimistically,
    // let a 2PL writer commit it, then fail commit validation.
    auto loser = db->OpenSession().Begin(optimistic);
    auto witness = loser.Create(1);
    auto target = loser.Get(shared[0]);
    if (!witness.ok() || !target.ok()) _exit(3);
    {
      auto interferer = db->OpenSession().Begin();
      auto obj = interferer.Get(shared[0]);
      if (!obj.ok()) _exit(3);
      obj->orefs[1] = shared[0];
      if (!interferer.Put(obj.value()).ok() || !interferer.Commit().ok()) {
        _exit(3);
      }
    }
    auto mine = loser.Get(*witness);
    if (!mine.ok()) _exit(3);
    mine->orefs[0] = shared[0];
    target->orefs[0] = *witness;
    if (!loser.Put(mine.value()).ok() || !loser.Put(target.value()).ok()) {
      _exit(3);
    }
    std::fprintf(side, "I %llu %llu\n",
                 static_cast<unsigned long long>(shared[0]),
                 static_cast<unsigned long long>(*witness));
    std::fflush(side);
    if (loser.Commit().ok()) _exit(3);  // MUST lose validation.
    std::fprintf(side, "R %llu %llu\n",
                 static_cast<unsigned long long>(shared[0]),
                 static_cast<unsigned long long>(*witness));
    std::fflush(side);
  }

  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([db, side, per_thread, cc, &mu, &shared, t]() {
      auto session = db->OpenSession();
      TxnOptions options;
      options.cc = cc;
      std::mt19937 rng(static_cast<unsigned>(7 + t));
      std::uniform_int_distribution<size_t> pick(0, shared.size() - 1);
      for (int i = 0; i < per_thread; ++i) {
        auto txn = session.Begin(options);
        const Oid a = shared[pick(rng)];
        auto target = txn.Get(a);
        if (!target.ok()) _exit(3);
        auto witness = txn.Create(1);
        if (!witness.ok()) _exit(3);
        auto mine = txn.Get(*witness);
        if (!mine.ok()) _exit(3);
        mine->orefs[0] = a;
        target->orefs[0] = *witness;
        if (!txn.Put(mine.value()).ok() || !txn.Put(target.value()).ok()) {
          _exit(3);
        }
        {
          std::lock_guard<std::mutex> lock(mu);
          std::fprintf(side, "I %llu %llu\n",
                       static_cast<unsigned long long>(a),
                       static_cast<unsigned long long>(*witness));
          std::fflush(side);
        }
        const Status st = txn.Commit();
        if (!st.ok() && !st.IsWriteConflict() && !st.IsAborted()) _exit(3);
        {
          std::lock_guard<std::mutex> lock(mu);
          std::fprintf(side, "%s %llu %llu\n", st.ok() ? "A" : "R",
                       static_cast<unsigned long long>(a),
                       static_cast<unsigned long long>(*witness));
          std::fflush(side);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
}

// Entry point for OCB_KILL_CHILD_MODE. Never returns on a kill; returns 0
// if the storm outran the countdown (the parent treats that as failure).
int RunKillChild(const std::string& mode) {
  const char* wal = std::getenv("OCB_KILL_WAL");
  const char* side_path = std::getenv("OCB_KILL_SIDE");
  const char* snap = std::getenv("OCB_KILL_SNAP");
  if (wal == nullptr || side_path == nullptr || snap == nullptr) return 2;
  std::FILE* side = std::fopen(side_path, "w");
  if (side == nullptr) return 2;

  // Checkpoint cases storm quietly first, then die inside SaveSnapshot.
  const char* point = std::getenv("OCB_WAL_KILLPOINT");
  const bool checkpoint =
      point != nullptr && std::string(point) == "mid-checkpoint";
  if (mode == "db-si" || mode == "db-occ" || mode == "sharded-si" ||
      mode == "sharded-occ") {
    const CcAlgorithm cc = mode.find("-si") != std::string::npos
                               ? CcAlgorithm::kSnapshotIsolation
                               : CcAlgorithm::kSiloOCC;
    if (mode.rfind("db", 0) == 0) {
      Database db(ChildOptions(wal));
      db.SetSchema(TwoClassSchema());
      CcStormChild(&db, side, 4, 24, cc);
    } else {
      ShardedDatabase db(ChildOptions(wal), kShards);
      db.SetSchema(TwoClassSchema());
      CcStormChild(&db, side, 4, 24, cc);
    }
    std::fclose(side);
    return 0;
  }
  if (mode == "db") {
    Database db(ChildOptions(wal));
    db.SetSchema(TwoClassSchema());
    if (checkpoint) {
      // Quiet commits, then one checkpoint: SaveSnapshot dies between the
      // snapshot-file fsync and the checkpoint log record.
      StormChild(&db, side, 1, 6);
      SaveSnapshot(&db, snap);
    } else {
      StormChild(&db, side, 4, 24);
    }
  } else {
    ShardedDatabase db(ChildOptions(wal), kShards);
    db.SetSchema(TwoClassSchema());
    if (checkpoint) {
      StormChild(&db, side, 1, 6);
      SaveSnapshot(db.shard(0), snap);
    } else {
      StormChild(&db, side, 4, 24);
    }
  }
  std::fclose(side);
  return 0;
}

// ---------------------------------------------------------------------------
// Parent side.

struct SideLog {
  std::vector<std::pair<Oid, Oid>> acked;
  std::vector<std::pair<Oid, Oid>> rejected;  // Validation abort logged.
  std::vector<std::pair<Oid, Oid>> unacked;   // Intent, then the crash.
};

SideLog ParseSideLog(const std::string& path) {
  SideLog out;
  std::vector<std::pair<Oid, Oid>> intents;
  std::set<std::pair<Oid, Oid>> acks;
  std::set<std::pair<Oid, Oid>> rejects;
  std::ifstream in(path);
  std::string tag;
  unsigned long long a = 0, b = 0;
  while (in >> tag >> a >> b) {
    if (tag == "I") intents.emplace_back(a, b);
    if (tag == "A") acks.insert({a, b});
    if (tag == "R") rejects.insert({a, b});
  }
  for (const auto& pair : intents) {
    if (acks.count(pair)) {
      out.acked.push_back(pair);
    } else if (rejects.count(pair)) {
      out.rejected.push_back(pair);
    } else {
      out.unacked.push_back(pair);
    }
  }
  return out;
}

class KillpointTest : public ::testing::Test {
 protected:
  void TearDown() override {
    std::remove(wal_.c_str());
    for (uint32_t k = 0; k < kShards; ++k) {
      std::remove((wal_ + Format(".shard%u", k)).c_str());
    }
    std::remove((wal_ + ".coord").c_str());
    std::remove(side_.c_str());
    std::remove(snap_.c_str());
  }

  StorageOptions WalOptions() { return ChildOptions(wal_.c_str()); }

  // Re-execs this binary in child mode with the kill point armed and
  // waits for it to die there (exit 137 = _exit at the kill point).
  void RunChild(const char* mode, const char* point, int kill_after) {
    TearDown();  // Fresh logs for every case.
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      setenv("OCB_KILL_CHILD_MODE", mode, 1);
      setenv("OCB_KILL_WAL", wal_.c_str(), 1);
      setenv("OCB_KILL_SIDE", side_.c_str(), 1);
      setenv("OCB_KILL_SNAP", snap_.c_str(), 1);
      setenv("OCB_WAL_KILLPOINT", point, 1);
      setenv("OCB_WAL_KILL_AFTER", Format("%d", kill_after).c_str(), 1);
      char* const argv[] = {const_cast<char*>("recovery_killpoint_child"),
                            nullptr};
      execv("/proc/self/exe", argv);
      _exit(2);  // exec failed.
    }
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 137)
        << "child did not die at kill point '" << point << "'";
    log_ = ParseSideLog(side_);
    ASSERT_FALSE(log_.acked.empty())
        << "vacuous run: no commit was acked before the crash";
  }

  // Acked => readable and linked; intent-without-ack => atomic.
  template <typename DB>
  void VerifyContract(DB* revived) {
    for (const auto& [a, b] : log_.acked) {
      auto ra = revived->PeekObject(a);
      ASSERT_TRUE(ra.ok()) << "acked oid " << a << " lost";
      EXPECT_EQ(ra->orefs[0], b) << "acked link " << a << "->" << b;
      EXPECT_TRUE(revived->PeekObject(b).ok()) << "acked oid " << b;
    }
    for (const auto& [a, b] : log_.unacked) {
      const bool has_a = revived->PeekObject(a).ok();
      const bool has_b = revived->PeekObject(b).ok();
      EXPECT_EQ(has_a, has_b)
          << "half a transaction recovered: " << a << "/" << b;
      if (has_a) {
        EXPECT_EQ(revived->PeekObject(a)->orefs[0], b)
            << "recovered pair " << a << "/" << b << " lost its link";
      }
    }
  }

  // The optimistic storm's contract. The witness object b is each
  // transaction's durability evidence (the contended slot gets
  // overwritten by later winners, so it proves nothing):
  //   * acked      => b replayed, still pointing at its target;
  //   * rejected   => b wholly absent (the validation abort rolled the
  //                   eager creation back before any redo was logged);
  //   * crash-torn => atomic: if b recovered, its link recovered too.
  template <typename DB>
  void VerifyCcContract(DB* revived) {
    ASSERT_FALSE(log_.rejected.empty())
        << "the deterministic validation abort never happened";
    for (const auto& [a, b] : log_.acked) {
      auto witness = revived->PeekObject(b);
      ASSERT_TRUE(witness.ok()) << "acked witness " << b << " lost";
      EXPECT_EQ(witness->orefs[0], a)
          << "acked witness " << b << " lost its link to " << a;
      EXPECT_TRUE(revived->PeekObject(a).ok());
    }
    for (const auto& [a, b] : log_.rejected) {
      EXPECT_FALSE(revived->PeekObject(b).ok())
          << "validation-aborted witness " << b << " was replayed";
    }
    for (const auto& [a, b] : log_.unacked) {
      auto witness = revived->PeekObject(b);
      if (witness.ok()) {
        EXPECT_EQ(witness->orefs[0], a)
            << "half-recovered optimistic txn: witness " << b
            << " present without its link";
      }
    }
  }

  void RunDatabaseCase(const char* point, int kill_after) {
    RunChild("db", point, kill_after);
    if (HasFatalFailure()) return;
    Database revived(WalOptions());
    revived.SetSchema(TwoClassSchema());
    ASSERT_TRUE(wal::RecoverDatabase(&revived).ok());
    VerifyContract(&revived);
  }

  void RunShardedCase(const char* point, int kill_after) {
    RunChild("sharded", point, kill_after);
    if (HasFatalFailure()) return;
    ShardedDatabase revived(WalOptions(), kShards);
    revived.SetSchema(TwoClassSchema());
    ASSERT_TRUE(wal::RecoverShardedDatabase(&revived).ok());
    VerifyContract(&revived);
  }

  void RunDatabaseCcCase(const char* mode, const char* point,
                         int kill_after) {
    RunChild(mode, point, kill_after);
    if (HasFatalFailure()) return;
    Database revived(WalOptions());
    revived.SetSchema(TwoClassSchema());
    ASSERT_TRUE(wal::RecoverDatabase(&revived).ok());
    VerifyCcContract(&revived);
  }

  void RunShardedCcCase(const char* mode, const char* point,
                        int kill_after) {
    RunChild(mode, point, kill_after);
    if (HasFatalFailure()) return;
    ShardedDatabase revived(WalOptions(), kShards);
    revived.SetSchema(TwoClassSchema());
    ASSERT_TRUE(wal::RecoverShardedDatabase(&revived).ok());
    VerifyCcContract(&revived);
  }

  std::string wal_ = TempPath("ocb_killpoint_test.wal");
  std::string side_ = TempPath("ocb_killpoint_test.side");
  std::string snap_ = TempPath("ocb_killpoint_test.snap");
  SideLog log_;
};

TEST_F(KillpointTest, DatabasePreForce) { RunDatabaseCase("pre-force", 6); }

TEST_F(KillpointTest, DatabasePostForcePreAck) {
  RunDatabaseCase("post-force", 6);
}

TEST_F(KillpointTest, DatabaseMidBatch) { RunDatabaseCase("mid-batch", 10); }

TEST_F(KillpointTest, DatabaseMidCheckpoint) {
  // All six commits were acked before the checkpoint started; dying with
  // the snapshot file written but its checkpoint record unlogged must
  // lose none of them (recovery ignores the orphan snapshot).
  RunDatabaseCase("mid-checkpoint", 0);
}

TEST_F(KillpointTest, ShardedPreForce) { RunShardedCase("pre-force", 6); }

TEST_F(KillpointTest, ShardedPostForcePreAck) {
  RunShardedCase("post-force", 6);
}

TEST_F(KillpointTest, ShardedMidBatch) { RunShardedCase("mid-batch", 10); }

TEST_F(KillpointTest, ShardedMidCheckpoint) {
  RunShardedCase("mid-checkpoint", 0);
}

// The optimistic storms: same kill points, Put-based contended writes.

TEST_F(KillpointTest, DatabaseSnapshotIsolationStorm) {
  RunDatabaseCcCase("db-si", "pre-force", 10);
}

TEST_F(KillpointTest, DatabaseSiloOccStorm) {
  RunDatabaseCcCase("db-occ", "post-force", 10);
}

TEST_F(KillpointTest, ShardedSnapshotIsolationStorm) {
  RunShardedCcCase("sharded-si", "pre-force", 10);
}

TEST_F(KillpointTest, ShardedSiloOccStorm) {
  RunShardedCcCase("sharded-occ", "post-force", 10);
}

}  // namespace
}  // namespace ocb

// Custom main: in child mode (set by the harness before exec) run the
// commit storm instead of the test suite.
int main(int argc, char** argv) {
  if (const char* mode = std::getenv("OCB_KILL_CHILD_MODE")) {
    return ocb::RunKillChild(mode);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
