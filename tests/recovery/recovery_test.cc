// Crash-recovery tests: WAL replay onto fresh engines, checkpoint
// fast-forward, torn-tail and duplicate-replay edge cases, and the
// all-or-none rule for cross-shard (2PC) commits.

#include "wal/recovery.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "engine/session.h"
#include "oodb/database.h"
#include "oodb/snapshot.h"
#include "sharding/sharded_database.h"
#include "util/format.h"
#include "wal/wal_reader.h"

namespace ocb {
namespace {

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

Schema TwoClassSchema() {
  Schema schema;
  schema.SetRefTypes(Schema::DefaultTraits(3));
  ClassDescriptor a;
  a.id = 0;
  a.maxnref = 3;
  a.basesize = 40;
  a.instance_size = 40;
  a.tref = {2, 2, 2};
  a.cref = {1, 1, 0};
  ClassDescriptor b;
  b.id = 1;
  b.maxnref = 2;
  b.basesize = 20;
  b.instance_size = 20;
  b.tref = {2, 2};
  b.cref = {0, 0};
  Schema out = std::move(schema);
  EXPECT_TRUE(out.AddClass(std::move(a)).ok());
  EXPECT_TRUE(out.AddClass(std::move(b)).ok());
  return out;
}

class RecoveryTest : public ::testing::Test {
 protected:
  void TearDown() override {
    std::remove(wal_.c_str());
    std::remove(snap_.c_str());
    for (uint32_t k = 0; k < 8; ++k) {
      std::remove((wal_ + Format(".shard%u", k)).c_str());
      std::remove((snap_ + Format(".shard%u", k)).c_str());
    }
    std::remove((wal_ + ".coord").c_str());
  }

  StorageOptions WalOptions() {
    StorageOptions opts;
    opts.page_size = 1024;
    opts.buffer_pool_pages = 32;
    opts.wal_path = wal_;
    return opts;
  }

  std::string wal_ = TempPath("ocb_recovery_test.wal");
  std::string snap_ = TempPath("ocb_recovery_test.snap");
};

// Commits two linked objects through the session API; returns {a, b}.
template <typename DB>
std::pair<Oid, Oid> CommitLinkedPair(DB* db) {
  auto session = db->OpenSession();
  auto txn = session.Begin();
  auto a = txn.Create(0);
  auto b = txn.Create(1);
  EXPECT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(txn.SetReference(*a, 0, *b).ok());
  EXPECT_TRUE(txn.Commit().ok());
  return {*a, *b};
}

TEST_F(RecoveryTest, CommittedTransactionsSurviveRestart) {
  Oid a = 0, b = 0;
  {
    Database db(WalOptions());
    db.SetSchema(TwoClassSchema());
    std::tie(a, b) = CommitLinkedPair(&db);
    // Destructor closes the log; nothing else is persisted.
  }
  Database revived(WalOptions());
  revived.SetSchema(TwoClassSchema());
  ASSERT_TRUE(wal::RecoverDatabase(&revived).ok());

  auto ra = revived.PeekObject(a);
  auto rb = revived.PeekObject(b);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(ra->class_id, 0u);
  EXPECT_EQ(ra->orefs[0], b);           // The link replayed too.
  EXPECT_EQ(rb->backrefs.size(), 1u);   // Symmetric backref intact.
  // Extents rebuilt, commit axis advanced past the replayed commit.
  EXPECT_EQ(revived.ExtentSnapshot(0), std::vector<Oid>{a});
  EXPECT_EQ(revived.ExtentSnapshot(1), std::vector<Oid>{b});
  EXPECT_GE(revived.version_store()->latest(), 1u);
  // And the revived engine keeps working: new oids never collide.
  auto fresh = revived.CreateObject(0);
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT(*fresh, b);
}

TEST_F(RecoveryTest, UncommittedWritesDoNotReplay) {
  Oid committed = 0;
  {
    Database db(WalOptions());
    db.SetSchema(TwoClassSchema());
    auto session = db.OpenSession();
    auto good = session.Begin();
    auto c = good.Create(0);
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE(good.Commit().ok());
    committed = *c;
    // A transaction abandoned mid-flight: its writes were applied in
    // place but never logged (redo is built at commit), so recovery
    // must not resurrect them.
    auto doomed = session.Begin();
    ASSERT_TRUE(doomed.Create(1).ok());
    ASSERT_TRUE(doomed.Abort().ok());
  }
  Database revived(WalOptions());
  revived.SetSchema(TwoClassSchema());
  ASSERT_TRUE(wal::RecoverDatabase(&revived).ok());
  EXPECT_TRUE(revived.PeekObject(committed).ok());
  EXPECT_EQ(revived.object_count(), 1u);
  EXPECT_TRUE(revived.ExtentSnapshot(1).empty());
}

TEST_F(RecoveryTest, ReplayIsIdempotent) {
  Oid a = 0, b = 0;
  {
    Database db(WalOptions());
    db.SetSchema(TwoClassSchema());
    std::tie(a, b) = CommitLinkedPair(&db);
  }
  // Recover, then recover AGAIN over the already-recovered state — the
  // restart-during-recovery scenario. Same state, no duplicate extent
  // members, no errors.
  Database revived(WalOptions());
  revived.SetSchema(TwoClassSchema());
  ASSERT_TRUE(wal::RecoverDatabase(&revived).ok());
  ASSERT_TRUE(wal::RecoverDatabase(&revived).ok());
  EXPECT_EQ(revived.object_count(), 2u);
  EXPECT_EQ(revived.ExtentSnapshot(0), std::vector<Oid>{a});
  EXPECT_EQ(revived.ExtentSnapshot(1), std::vector<Oid>{b});
}

TEST_F(RecoveryTest, TornLastRecordIsDroppedCleanly) {
  Oid first = 0, second = 0;
  {
    Database db(WalOptions());
    db.SetSchema(TwoClassSchema());
    auto session = db.OpenSession();
    auto t1 = session.Begin();
    auto c1 = t1.Create(0);
    ASSERT_TRUE(c1.ok());
    ASSERT_TRUE(t1.Commit().ok());
    first = *c1;
    auto t2 = session.Begin();
    auto c2 = t2.Create(1);
    ASSERT_TRUE(c2.ok());
    ASSERT_TRUE(t2.Commit().ok());
    second = *c2;
  }
  // Crash torn mid-append: chop 3 bytes off the last record (inside its
  // CRC-covered body).
  auto scan = wal::ReadWal(wal_);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 2u);
  ASSERT_EQ(truncate(wal_.c_str(),
                     static_cast<off_t>(scan->valid_end - 3)),
            0);
  Database revived(WalOptions());
  revived.SetSchema(TwoClassSchema());
  ASSERT_TRUE(wal::RecoverDatabase(&revived).ok());
  EXPECT_TRUE(revived.PeekObject(first).ok());
  EXPECT_FALSE(revived.PeekObject(second).ok());
  EXPECT_EQ(revived.object_count(), 1u);
}

TEST_F(RecoveryTest, CheckpointPlusTailReplay) {
  Oid a = 0, b = 0, c = 0, d = 0;
  {
    Database db(WalOptions());
    db.SetSchema(TwoClassSchema());
    std::tie(a, b) = CommitLinkedPair(&db);
    ASSERT_TRUE(SaveSnapshot(&db, snap_).ok());  // Logs a checkpoint.
    std::tie(c, d) = CommitLinkedPair(&db);      // Tail past the watermark.
  }
  Database revived(WalOptions());
  revived.SetSchema(TwoClassSchema());
  ASSERT_TRUE(wal::RecoverDatabase(&revived).ok());
  for (Oid oid : {a, b, c, d}) {
    EXPECT_TRUE(revived.PeekObject(oid).ok()) << "oid " << oid;
  }
  EXPECT_EQ(revived.object_count(), 4u);
  EXPECT_EQ(revived.ExtentSnapshot(0), (std::vector<Oid>{a, c}));
}

TEST_F(RecoveryTest, SnapshotOnlyRestartWithEmptyTail) {
  // Everything committed before the checkpoint; the log's tail past the
  // watermark is empty — recovery is exactly the snapshot.
  Oid a = 0, b = 0;
  {
    Database db(WalOptions());
    db.SetSchema(TwoClassSchema());
    std::tie(a, b) = CommitLinkedPair(&db);
    ASSERT_TRUE(SaveSnapshot(&db, snap_).ok());
  }
  Database revived(WalOptions());
  revived.SetSchema(TwoClassSchema());
  ASSERT_TRUE(wal::RecoverDatabase(&revived).ok());
  EXPECT_EQ(revived.object_count(), 2u);
  EXPECT_TRUE(revived.PeekObject(a).ok());
  EXPECT_TRUE(revived.PeekObject(b).ok());
}

TEST_F(RecoveryTest, MissingSnapshotFallsBackToFullReplay) {
  Oid a = 0, b = 0, c = 0, d = 0;
  {
    Database db(WalOptions());
    db.SetSchema(TwoClassSchema());
    std::tie(a, b) = CommitLinkedPair(&db);
    ASSERT_TRUE(SaveSnapshot(&db, snap_).ok());
    std::tie(c, d) = CommitLinkedPair(&db);
  }
  // The checkpoint's snapshot file is gone: recovery must fall back to
  // replaying the whole log from scratch, not fail.
  ASSERT_EQ(std::remove(snap_.c_str()), 0);
  Database revived(WalOptions());
  revived.SetSchema(TwoClassSchema());
  ASSERT_TRUE(wal::RecoverDatabase(&revived).ok());
  for (Oid oid : {a, b, c, d}) {
    EXPECT_TRUE(revived.PeekObject(oid).ok()) << "oid " << oid;
  }
}

TEST_F(RecoveryTest, MissingLogRecoversToEmpty) {
  Database revived(WalOptions());
  revived.SetSchema(TwoClassSchema());
  // The Database constructor creates the log file; recovery of a log
  // with zero records is a no-op, not an error.
  ASSERT_TRUE(wal::RecoverDatabase(&revived).ok());
  EXPECT_EQ(revived.object_count(), 0u);
}

TEST_F(RecoveryTest, WalDisabledRecoveryIsNoOp) {
  StorageOptions opts;
  opts.page_size = 1024;
  opts.buffer_pool_pages = 32;
  Database db(opts);
  db.SetSchema(TwoClassSchema());
  EXPECT_FALSE(db.wal_enabled());
  EXPECT_TRUE(wal::RecoverDatabase(&db).ok());
}

// --- Sharded ---------------------------------------------------------------

TEST_F(RecoveryTest, ShardedCommitsSurviveRestart) {
  constexpr uint32_t kShards = 4;
  std::vector<Oid> oids;
  {
    ShardedDatabase db(WalOptions(), kShards);
    db.SetSchema(TwoClassSchema());
    ASSERT_TRUE(db.wal_enabled());
    // Round-robin creation spreads the pair across shards, so these
    // commits exercise cross-shard 2PC (records + coordinator markers).
    for (int i = 0; i < 6; ++i) {
      auto [a, b] = CommitLinkedPair(&db);
      oids.push_back(a);
      oids.push_back(b);
    }
  }
  ShardedDatabase revived(WalOptions(), kShards);
  revived.SetSchema(TwoClassSchema());
  ASSERT_TRUE(wal::RecoverShardedDatabase(&revived).ok());
  for (Oid oid : oids) {
    EXPECT_TRUE(revived.ContainsObject(oid)) << "oid " << oid;
  }
  EXPECT_EQ(revived.object_count(), oids.size());
  // The global axis resumed past every replayed commit: new cross-shard
  // commits still work and allocate fresh oids.
  auto [x, y] = CommitLinkedPair(&revived);
  EXPECT_TRUE(revived.ContainsObject(x));
  EXPECT_TRUE(revived.ContainsObject(y));
}

TEST_F(RecoveryTest, CoordinatedCommitWithoutMarkerDropsAllShards) {
  // The all-or-none rule, probed directly: delete the coordinator log so
  // no 2PC commit has a durable marker — every cross-shard commit must
  // vanish from EVERY shard, even though each shard's own log still
  // holds its (forced) half of the records.
  constexpr uint32_t kShards = 4;
  std::vector<Oid> oids;
  {
    ShardedDatabase db(WalOptions(), kShards);
    db.SetSchema(TwoClassSchema());
    for (int i = 0; i < 4; ++i) {
      auto [a, b] = CommitLinkedPair(&db);
      oids.push_back(a);
      oids.push_back(b);
    }
  }
  ASSERT_EQ(std::remove((wal_ + ".coord").c_str()), 0);
  ShardedDatabase revived(WalOptions(), kShards);
  revived.SetSchema(TwoClassSchema());
  ASSERT_TRUE(wal::RecoverShardedDatabase(&revived).ok());
  for (Oid oid : oids) {
    EXPECT_FALSE(revived.ContainsObject(oid)) << "oid " << oid;
  }
  EXPECT_EQ(revived.object_count(), 0u);
}

TEST_F(RecoveryTest, ShardedReplayIsIdempotent) {
  constexpr uint32_t kShards = 4;
  std::vector<Oid> oids;
  {
    ShardedDatabase db(WalOptions(), kShards);
    db.SetSchema(TwoClassSchema());
    auto [a, b] = CommitLinkedPair(&db);
    oids = {a, b};
  }
  ShardedDatabase revived(WalOptions(), kShards);
  revived.SetSchema(TwoClassSchema());
  ASSERT_TRUE(wal::RecoverShardedDatabase(&revived).ok());
  ASSERT_TRUE(wal::RecoverShardedDatabase(&revived).ok());
  EXPECT_EQ(revived.object_count(), 2u);
  for (Oid oid : oids) EXPECT_TRUE(revived.ContainsObject(oid));
}

}  // namespace
}  // namespace ocb
