// Tests for the Accumulator and Histogram statistics types.

#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace ocb {
namespace {

TEST(AccumulatorTest, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.min(), 0.0);
  EXPECT_EQ(acc.max(), 0.0);
  EXPECT_EQ(acc.stddev(), 0.0);
}

TEST(AccumulatorTest, BasicStatistics) {
  Accumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.Add(v);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_EQ(acc.min(), 2.0);
  EXPECT_EQ(acc.max(), 9.0);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
}

TEST(AccumulatorTest, SingleSampleVarianceIsZero) {
  Accumulator acc;
  acc.Add(5.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(AccumulatorTest, MergeEqualsBulk) {
  LewisPayneRng rng(1);
  Accumulator bulk, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble() * 100.0;
    bulk.Add(v);
    (i % 2 == 0 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), bulk.count());
  EXPECT_NEAR(left.mean(), bulk.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), bulk.variance(), 1e-6);
  EXPECT_EQ(left.min(), bulk.min());
  EXPECT_EQ(left.max(), bulk.max());
}

TEST(AccumulatorTest, MergeWithEmptySides) {
  Accumulator a, b;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(b);  // Empty right.
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.Merge(a);  // Empty left.
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(AccumulatorTest, Reset) {
  Accumulator acc;
  acc.Add(10.0);
  acc.Reset();
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(50), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, SmallValuesAreExact) {
  Histogram h;
  for (uint64_t v = 0; v < 16; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 16u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 15u);
  EXPECT_EQ(h.Percentile(100), 15u);
  EXPECT_EQ(h.Percentile(50), 7u);
}

TEST(HistogramTest, PercentileWithinRelativeError) {
  Histogram h;
  LewisPayneRng rng(2);
  std::vector<uint64_t> values;
  for (int i = 0; i < 100000; ++i) {
    const uint64_t v = static_cast<uint64_t>(rng.UniformInt(0, 1000000));
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double p : {50.0, 90.0, 99.0}) {
    const uint64_t exact =
        values[static_cast<size_t>(p / 100.0 * (values.size() - 1))];
    const uint64_t approx = h.Percentile(p);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                0.10 * static_cast<double>(exact) + 16.0)
        << "p" << p;
  }
}

TEST(HistogramTest, MeanMatches) {
  Histogram h;
  for (uint64_t v : {10u, 20u, 30u}) h.Record(v);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(HistogramTest, MergeAddsCounts) {
  Histogram a, b;
  a.Record(5);
  a.Record(100);
  b.Record(1000000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 5u);
  EXPECT_EQ(a.max(), 1000000u);
}

TEST(HistogramTest, LargeValuesDoNotOverflowBuckets) {
  Histogram h;
  h.Record(UINT64_MAX);
  h.Record(UINT64_MAX / 2);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), UINT64_MAX);
  EXPECT_GE(h.Percentile(100), UINT64_MAX / 2);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(42);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(99), 0u);
}

}  // namespace
}  // namespace ocb
