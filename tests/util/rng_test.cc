// Unit + property tests for the Lewis–Payne GFSR generator.

#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace ocb {
namespace {

TEST(LewisPayneRngTest, DeterministicForSameSeed) {
  LewisPayneRng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.NextUint32(), b.NextUint32());
  }
}

TEST(LewisPayneRngTest, DifferentSeedsDiverge) {
  LewisPayneRng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.NextUint32() == b.NextUint32()) ++equal;
  }
  EXPECT_LT(equal, 5);  // Chance collisions only.
}

TEST(LewisPayneRngTest, ReseedReproducesStream) {
  LewisPayneRng rng(99);
  std::vector<uint32_t> first;
  for (int i = 0; i < 100; ++i) first.push_back(rng.NextUint32());
  rng.Seed(99);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(rng.NextUint32(), first[i]);
  EXPECT_EQ(rng.seed(), 99u);
}

TEST(LewisPayneRngTest, ZeroSeedIsUsable) {
  LewisPayneRng rng(0);
  std::set<uint32_t> distinct;
  for (int i = 0; i < 100; ++i) distinct.insert(rng.NextUint32());
  EXPECT_GT(distinct.size(), 90u);  // Not stuck at a fixed point.
}

TEST(LewisPayneRngTest, GfsrRecurrenceHolds) {
  // x[n] = x[n-98] ^ x[n-71]: verify directly on the output stream.
  LewisPayneRng rng(7);
  std::vector<uint32_t> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.NextUint32());
  for (size_t n = LewisPayneRng::kP; n < xs.size(); ++n) {
    ASSERT_EQ(xs[n],
              xs[n - LewisPayneRng::kP] ^
                  xs[n - LewisPayneRng::kP + LewisPayneRng::kQ])
        << "at index " << n;
  }
}

TEST(LewisPayneRngTest, NextDoubleInUnitInterval) {
  LewisPayneRng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(LewisPayneRngTest, UniformIntRespectsBoundsInclusive) {
  LewisPayneRng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    saw_lo |= (v == 3);
    saw_hi |= (v == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(LewisPayneRngTest, UniformIntDegenerateRange) {
  LewisPayneRng rng(13);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.UniformInt(42, 42), 42);
}

TEST(LewisPayneRngTest, UniformIntNegativeRange) {
  LewisPayneRng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-10, -5);
    ASSERT_GE(v, -10);
    ASSERT_LE(v, -5);
  }
}

TEST(LewisPayneRngTest, UniformIntIsRoughlyUniform) {
  LewisPayneRng rng(23);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[static_cast<size_t>(rng.UniformInt(0, kBuckets - 1))];
  }
  // Chi-square with 9 dof: 99.9th percentile ≈ 27.9.
  double chi2 = 0.0;
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  EXPECT_LT(chi2, 27.9);
}

TEST(LewisPayneRngTest, BernoulliEdgeCases) {
  LewisPayneRng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(LewisPayneRngTest, BernoulliFrequency) {
  LewisPayneRng rng(31);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(LewisPayneRngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<LewisPayneRng>);
  LewisPayneRng rng(37);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::shuffle(v.begin(), v.end(), rng);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(LewisPayneRngTest, BitBalance) {
  // Each of the 32 bit positions should be set about half the time.
  LewisPayneRng rng(41);
  constexpr int kDraws = 20000;
  std::vector<int> ones(32, 0);
  for (int i = 0; i < kDraws; ++i) {
    const uint32_t v = rng.NextUint32();
    for (int b = 0; b < 32; ++b) {
      if (v & (1u << b)) ++ones[static_cast<size_t>(b)];
    }
  }
  for (int b = 0; b < 32; ++b) {
    EXPECT_NEAR(static_cast<double>(ones[static_cast<size_t>(b)]) / kDraws,
                0.5, 0.02)
        << "bit " << b;
  }
}

class RngSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSeedSweep, StreamHasNoShortCycle) {
  LewisPayneRng rng(GetParam());
  std::vector<uint32_t> first(256);
  for (auto& v : first) v = rng.NextUint32();
  // Scan the next 64k draws for a repeat of the opening 256-word window.
  std::vector<uint32_t> window = first;
  for (int i = 0; i < 65536; ++i) {
    window.erase(window.begin());
    window.push_back(rng.NextUint32());
    ASSERT_NE(window, first) << "cycle at offset " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0u, 1u, 42u, 1998u,
                                           0xFFFFFFFFFFFFFFFFull));

}  // namespace
}  // namespace ocb
