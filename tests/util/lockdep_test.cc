/// \file lockdep_test.cc
/// \brief Runtime lock-order validator tests (src/util/lockdep.h).
///
/// The suite runs in BOTH build modes and asserts the mode-specific
/// contract:
///
///   * -DOCB_LOCKDEP=ON — seeded hierarchy violations (a buffer-pool
///     stripe mutex taken before the catalog latch, descending frame
///     keys, a class-level order cycle) are reported with the lock
///     *names* of both sides, while a full correct-order descent through
///     the hierarchy passes silently.
///   * OFF (the default build) — lockdep::kEnabled is compile-time
///     false and the wrappers are byte-identical to the std types they
///     wrap: the validator is zero-cost, not merely quiet (mirrors the
///     OCB_OBS compile-out contract).
///
/// Violation scenarios each run on a FRESH thread: the validator keeps a
/// per-thread seen-edge cache (hot acquisitions skip the graph mutex),
/// so a recycled thread would skip the graph check ResetGraphForTest
/// just re-armed.

#include "util/lockdep.h"

#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "util/sync.h"

namespace ocb {
namespace {

using lockdep::Violation;

#if defined(OCB_LOCKDEP_ENABLED)

/// Collects violations for the current scope instead of aborting.
class ViolationCollector {
 public:
  ViolationCollector() {
    lockdep::SetFailureHandlerForTest(
        [this](const Violation& v) { violations_.push_back(v); });
  }
  ~ViolationCollector() { lockdep::SetFailureHandlerForTest(nullptr); }

  const std::vector<Violation>& violations() const { return violations_; }

 private:
  std::vector<Violation> violations_;
};

/// Runs \p fn on a fresh thread (fresh held stack + seen-edge cache).
template <typename Fn>
void OnFreshThread(Fn&& fn) {
  std::thread t(std::forward<Fn>(fn));
  t.join();
}

bool AnyContains(const std::vector<std::string>& names,
                 const std::string& needle) {
  for (const std::string& n : names) {
    if (n.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(LockdepTest, EnabledInThisBuild) {
  static_assert(lockdep::kEnabled,
                "suite compiled with OCB_LOCKDEP=ON but kEnabled is false");
}

TEST(LockdepTest, CorrectHierarchyDescentPasses) {
  lockdep::ResetGraphForTest();
  ViolationCollector collector;
  OnFreshThread([] {
    // A realistic top-down walk: lock manager -> commit stamp ->
    // read-view registry -> catalog -> two frames (ascending page ids)
    // -> stripe (the prefetch issue loop holds miss latches while
    // taking the next page's stripe mutex) -> oid table -> version
    // chain -> WAL.
    Mutex lockmgr(lockdep::kLockManagerTableClass, 0);
    Mutex commit(lockdep::kVersionStoreCommitClass, 0);
    Mutex readview(lockdep::kReadViewRegistryClass);
    SharedMutex catalog(lockdep::kCatalogLatchClass);
    Mutex stripe(lockdep::kBufferStripeClass, 2);
    SharedMutex frame_a(lockdep::kFrameLatchClass, 10);
    SharedMutex frame_b(lockdep::kFrameLatchClass, 11);
    Mutex oidmap(lockdep::kOidTableClass, 1);
    Mutex chain(lockdep::kVersionChainClass, 3);
    Mutex wal(lockdep::kWalWriterClass);

    MutexLock l1(lockmgr);
    MutexLock l2(commit);
    MutexLock l3(readview);
    ReaderMutexLock l4(catalog);
    WriterMutexLock l5(frame_a);
    ReaderMutexLock l6(frame_b);  // Ascending page id: legal.
    MutexLock l7(stripe);
    MutexLock l8(oidmap);
    MutexLock l9(chain);
    MutexLock l10(wal);
    EXPECT_EQ(lockdep::HeldCount(), 10u);
  });
  EXPECT_TRUE(collector.violations().empty())
      << collector.violations().front().message;
}

TEST(LockdepTest, GuardsUnwindTheHeldStack) {
  lockdep::ResetGraphForTest();
  ViolationCollector collector;
  OnFreshThread([] {
    SharedMutex catalog(lockdep::kCatalogLatchClass);
    {
      WriterMutexLock guard(catalog);
      EXPECT_EQ(lockdep::HeldCount(), 1u);
    }
    EXPECT_EQ(lockdep::HeldCount(), 0u);
    // Releasing made room: re-acquiring the same instance is legal.
    ReaderMutexLock again(catalog);
    EXPECT_EQ(lockdep::HeldCount(), 1u);
  });
  EXPECT_TRUE(collector.violations().empty());
}

TEST(LockdepTest, StripeThenCatalogIsReportedWithBothNames) {
  lockdep::ResetGraphForTest();
  ViolationCollector collector;
  OnFreshThread([] {
    // The seeded inversion from the issue: a buffer-pool stripe mutex
    // (rank 130) held while taking the catalog latch (rank 100) — the
    // exact bug class the hierarchy exists to forbid.
    Mutex stripe(lockdep::kBufferStripeClass, 0);
    SharedMutex catalog(lockdep::kCatalogLatchClass);
    MutexLock hold_stripe(stripe);
    ReaderMutexLock inverted(catalog);
  });
  ASSERT_EQ(collector.violations().size(), 1u);
  const Violation& v = collector.violations().front();
  EXPECT_EQ(v.kind, "rank-inversion");
  // Both lock names, so the report alone identifies the bad edge.
  EXPECT_NE(v.acquiring.find("catalog.latch"), std::string::npos)
      << v.message;
  EXPECT_TRUE(AnyContains(v.held, "pool.stripe")) << v.message;
  // The report embeds both, plus the pointer to the rank table.
  EXPECT_NE(v.message.find("catalog.latch"), std::string::npos);
  EXPECT_NE(v.message.find("pool.stripe"), std::string::npos);
  EXPECT_NE(v.message.find("ARCHITECTURE.md"), std::string::npos);
}

TEST(LockdepTest, DescendingFrameKeysAreAKeyOrderViolation) {
  lockdep::ResetGraphForTest();
  ViolationCollector collector;
  OnFreshThread([] {
    // Frame latches share a rank; multi-page operations must ascend by
    // page id (the relocation-path rule).
    SharedMutex frame_hi(lockdep::kFrameLatchClass, 42);
    SharedMutex frame_lo(lockdep::kFrameLatchClass, 7);
    WriterMutexLock hold_hi(frame_hi);
    WriterMutexLock descending(frame_lo);
  });
  ASSERT_EQ(collector.violations().size(), 1u);
  const Violation& v = collector.violations().front();
  EXPECT_EQ(v.kind, "key-order");
  EXPECT_NE(v.acquiring.find("page.frame[key=7]"), std::string::npos)
      << v.message;
  EXPECT_TRUE(AnyContains(v.held, "page.frame[key=42]")) << v.message;
}

TEST(LockdepTest, SecondCatalogLatchIsReported) {
  lockdep::ResetGraphForTest();
  ViolationCollector collector;
  OnFreshThread([] {
    // Catalog latches carry no per-instance key: cross-shard paths take
    // shard catalogs one at a time, and holding two is the undocumented
    // ordering the validator exists to surface.
    SharedMutex catalog_a(lockdep::kCatalogLatchClass);
    SharedMutex catalog_b(lockdep::kCatalogLatchClass);
    ReaderMutexLock hold_a(catalog_a);
    ReaderMutexLock hold_b(catalog_b);
  });
  ASSERT_EQ(collector.violations().size(), 1u);
  EXPECT_EQ(collector.violations().front().kind, "key-order");
}

TEST(LockdepTest, SameInstanceReentryIsRecursion) {
  lockdep::ResetGraphForTest();
  ViolationCollector collector;
  OnFreshThread([] {
    Mutex wal(lockdep::kWalWriterClass);
    wal.lock();
    // Validate (and report) before the std::mutex would deadlock: the
    // check runs pre-block, so the test can recover and unlock.
    lockdep::OnAcquire(lockdep::kWalWriterClass, &wal, lockdep::kNoKey);
    lockdep::OnRelease(lockdep::kWalWriterClass, &wal);
    wal.unlock();
  });
  ASSERT_EQ(collector.violations().size(), 1u);
  EXPECT_EQ(collector.violations().front().kind, "recursion");
}

TEST(LockdepTest, OrderCycleReportsBothStacks) {
  lockdep::ResetGraphForTest();
  ViolationCollector collector;
  // Thread 1 records the legal class-level edge catalog -> observer.
  OnFreshThread([] {
    SharedMutex catalog(lockdep::kCatalogLatchClass);
    Mutex observer(lockdep::kObserverClass);
    ReaderMutexLock a(catalog);
    MutexLock b(observer);
  });
  ASSERT_TRUE(collector.violations().empty());
  // Thread 2 tries the opposite order: the rank check fires first, and
  // the order graph *additionally* closes the cycle — its report names
  // the first thread's stack, the "other stack trace" of a lockdep
  // report.
  OnFreshThread([] {
    SharedMutex catalog(lockdep::kCatalogLatchClass);
    Mutex observer(lockdep::kObserverClass);
    MutexLock b(observer);
    ReaderMutexLock a(catalog);
  });
  ASSERT_EQ(collector.violations().size(), 2u);
  EXPECT_EQ(collector.violations()[0].kind, "rank-inversion");
  const Violation& cycle = collector.violations()[1];
  EXPECT_EQ(cycle.kind, "order-cycle");
  EXPECT_NE(cycle.acquiring.find("catalog.latch"), std::string::npos);
  EXPECT_TRUE(AnyContains(cycle.held, "db.observer")) << cycle.message;
  ASSERT_FALSE(cycle.prior_order.empty());
  EXPECT_TRUE(AnyContains(cycle.prior_order, "catalog.latch"))
      << cycle.message;
  EXPECT_NE(cycle.message.find("opposite order first observed"),
            std::string::npos);
  lockdep::ResetGraphForTest();  // Drop the seeded bad edge.
}

TEST(LockdepTest, TryLockIsExemptFromOrderingChecks) {
  lockdep::ResetGraphForTest();
  ViolationCollector collector;
  OnFreshThread([] {
    // Eviction try-locks victim frames in LRU order, not page order, so
    // a successful try-lock must never be flagged: it did not block, so
    // it cannot have deadlocked.
    Mutex stripe(lockdep::kBufferStripeClass, 0);
    SharedMutex catalog(lockdep::kCatalogLatchClass);
    MutexLock hold_stripe(stripe);
    ASSERT_TRUE(catalog.try_lock());  // Inverted rank, but try-locked.
    EXPECT_EQ(lockdep::HeldCount(), 2u);
    catalog.unlock();
  });
  EXPECT_TRUE(collector.violations().empty())
      << collector.violations().front().message;
}

TEST(LockdepTest, SetLockdepKeyRebindsAHeldLatch) {
  lockdep::ResetGraphForTest();
  ViolationCollector collector;
  OnFreshThread([] {
    // The frame-install protocol: a victim frame still keyed by its old
    // resident (page 99) is re-keyed to the new page (1) under its own
    // exclusive hold; subsequent ascending acquisitions must be judged
    // against the NEW key.
    SharedMutex frame(lockdep::kFrameLatchClass, 99);
    SharedMutex next(lockdep::kFrameLatchClass, 2);
    WriterMutexLock install(frame);
    frame.SetLockdepKey(1);
    WriterMutexLock ascending(next);  // 2 > 1: legal after the rebind.
  });
  EXPECT_TRUE(collector.violations().empty())
      << collector.violations().front().message;
}

#else  // !OCB_LOCKDEP_ENABLED — the zero-cost contract.

TEST(LockdepTest, CompiledOutInThisBuild) {
  static_assert(!lockdep::kEnabled,
                "default build must not compile the validator in");
  // Zero cost means zero *size*: the lockdep base is empty, so the
  // wrappers are byte-identical to the std types they wrap.
  static_assert(sizeof(Mutex) == sizeof(std::mutex),
                "Mutex must add no state when lockdep is off");
  static_assert(sizeof(SharedMutex) == sizeof(std::shared_mutex),
                "SharedMutex must add no state when lockdep is off");
}

TEST(LockdepTest, HooksAreInertNoOps) {
  // The seeded inversion from the ON-mode suite: with the validator
  // compiled out it must be silent (no handler, no bookkeeping).
  Mutex stripe(lockdep::kBufferStripeClass, 0);
  SharedMutex catalog(lockdep::kCatalogLatchClass);
  MutexLock hold_stripe(stripe);
  ReaderMutexLock inverted(catalog);
  EXPECT_EQ(lockdep::HeldCount(), 0u);  // Nothing is tracked.
}

#endif  // OCB_LOCKDEP_ENABLED

}  // namespace
}  // namespace ocb
