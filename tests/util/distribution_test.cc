// Tests for the DIST1..DIST5 distribution machinery.

#include "util/distribution.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace ocb {
namespace {

TEST(DistributionSpecTest, Names) {
  EXPECT_EQ(DistributionSpec::Uniform().ToString(), "Uniform");
  EXPECT_EQ(DistributionSpec::Constant(3).ToString(), "Constant(3)");
  EXPECT_EQ(DistributionSpec::Zipf(0.5).ToString(), "Zipf(theta=0.50)");
  EXPECT_EQ(DistributionSpec::SpecialRefZone(100, 0.9).ToString(),
            "Special(zone=100, p=0.90)");
}

TEST(DistributionSpecTest, ValidateRejectsBadParameters) {
  EXPECT_TRUE(DistributionSpec::Zipf(-1.0).Validate().IsInvalidArgument());
  EXPECT_TRUE(DistributionSpec::Zipf(11.0).Validate().IsInvalidArgument());
  EXPECT_TRUE(
      DistributionSpec::Gaussian(-0.1).Validate().IsInvalidArgument());
  EXPECT_TRUE(DistributionSpec::SpecialRefZone(-5)
                  .Validate()
                  .IsInvalidArgument());
  DistributionSpec bad_prob = DistributionSpec::SpecialRefZone(10, 1.5);
  EXPECT_TRUE(bad_prob.Validate().IsInvalidArgument());
  EXPECT_TRUE(DistributionSpec::Uniform().Validate().ok());
  EXPECT_TRUE(DistributionSpec::Constant(0).Validate().ok());
}

TEST(DistributionTest, ConstantReturnsValue) {
  LewisPayneRng rng(1);
  const DistributionSpec spec = DistributionSpec::Constant(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(DrawFromDistribution(spec, &rng, 0, 10), 5);
  }
}

TEST(DistributionTest, ConstantClampsIntoRange) {
  LewisPayneRng rng(2);
  EXPECT_EQ(DrawFromDistribution(DistributionSpec::Constant(100), &rng, 0, 9),
            9);
  EXPECT_EQ(DrawFromDistribution(DistributionSpec::Constant(-3), &rng, 0, 9),
            0);
}

TEST(DistributionTest, SwappedBoundsAreNormalized) {
  LewisPayneRng rng(3);
  for (int i = 0; i < 100; ++i) {
    const int64_t v =
        DrawFromDistribution(DistributionSpec::Uniform(), &rng, 9, 0);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 9);
  }
}

TEST(DistributionTest, ZipfFavoursLowValues) {
  LewisPayneRng rng(4);
  const DistributionSpec spec = DistributionSpec::Zipf(0.99);
  std::map<int64_t, int> counts;
  for (int i = 0; i < 50000; ++i) {
    ++counts[DrawFromDistribution(spec, &rng, 1, 1000)];
  }
  // Rank 1 should dominate rank 10 which should dominate rank 100.
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[10], counts[100]);
  EXPECT_GT(counts[1], 1000);
}

TEST(DistributionTest, GaussianCentersOnMidpoint) {
  LewisPayneRng rng(5);
  const DistributionSpec spec = DistributionSpec::Gaussian(0.1);
  double sum = 0.0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    sum += static_cast<double>(DrawFromDistribution(spec, &rng, 0, 100));
  }
  EXPECT_NEAR(sum / kDraws, 50.0, 1.0);
}

TEST(DistributionTest, SpecialRefZoneLocality) {
  LewisPayneRng rng(6);
  const DistributionSpec spec = DistributionSpec::SpecialRefZone(10, 0.9);
  constexpr int64_t kCenter = 500;
  int inside = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const int64_t v =
        DrawFromDistribution(spec, &rng, 0, 999, kCenter);
    if (v >= kCenter - 10 && v <= kCenter + 10) ++inside;
  }
  // 90% in-zone plus ~2% of the uniform tail landing in the 21-wide zone.
  EXPECT_NEAR(static_cast<double>(inside) / kDraws, 0.902, 0.02);
}

TEST(DistributionTest, SpecialRefZoneClampsWindowAtEdges) {
  LewisPayneRng rng(7);
  const DistributionSpec spec = DistributionSpec::SpecialRefZone(10, 1.0);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = DrawFromDistribution(spec, &rng, 0, 999, 0);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 10);
  }
}

TEST(DistributionTest, SpecialZeroZoneDegeneratesToCenter) {
  LewisPayneRng rng(8);
  const DistributionSpec spec = DistributionSpec::SpecialRefZone(0, 1.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(DrawFromDistribution(spec, &rng, 0, 999, 123), 123);
  }
}

// Property sweep: every kind respects [lo, hi] bounds on varied ranges.
struct BoundsCase {
  DistributionSpec spec;
  int64_t lo, hi;
};

class DistributionBounds : public ::testing::TestWithParam<BoundsCase> {};

TEST_P(DistributionBounds, DrawsStayInRange) {
  LewisPayneRng rng(9);
  const BoundsCase& c = GetParam();
  for (int i = 0; i < 5000; ++i) {
    const int64_t v =
        DrawFromDistribution(c.spec, &rng, c.lo, c.hi, (c.lo + c.hi) / 2);
    ASSERT_GE(v, c.lo);
    ASSERT_LE(v, c.hi);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, DistributionBounds,
    ::testing::Values(
        BoundsCase{DistributionSpec::Uniform(), 0, 0},
        BoundsCase{DistributionSpec::Uniform(), -50, 50},
        BoundsCase{DistributionSpec::Constant(7), 0, 3},
        BoundsCase{DistributionSpec::Zipf(0.99), 1, 1},
        BoundsCase{DistributionSpec::Zipf(0.5), 10, 500},
        BoundsCase{DistributionSpec::Zipf(2.0), 0, 99},
        BoundsCase{DistributionSpec::Gaussian(0.3), -10, 10},
        BoundsCase{DistributionSpec::Gaussian(0.01), 5, 6},
        BoundsCase{DistributionSpec::SpecialRefZone(5, 0.9), 0, 20},
        BoundsCase{DistributionSpec::SpecialRefZone(1000, 0.5), 0, 10}));

}  // namespace
}  // namespace ocb
