// Unit tests for Status / Result error handling.

#include "util/status.h"

#include <gtest/gtest.h>

namespace ocb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::NoSpace("x").IsNoSpace());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_FALSE(Status::NotFound("x").ok());
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  const Status st = Status::IOError("disk exploded");
  EXPECT_EQ(st.ToString(), "IOError: disk exploded");
  EXPECT_EQ(st.message(), "disk exploded");
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

TEST(StatusCodeTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNoSpace), "NoSpace");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

namespace macros {

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  OCB_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

Result<int> Doubler(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return x * 2;
}

Result<int> UseAssign(int x) {
  OCB_ASSIGN_OR_RETURN(int doubled, Doubler(x));
  OCB_ASSIGN_OR_RETURN(int quadrupled, Doubler(doubled));
  return quadrupled;
}

}  // namespace macros

TEST(StatusMacrosTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(macros::Chain(1).ok());
  EXPECT_TRUE(macros::Chain(-1).IsInvalidArgument());
}

TEST(StatusMacrosTest, AssignOrReturnTwiceInOneFunction) {
  auto r = macros::UseAssign(3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 12);
  EXPECT_TRUE(macros::UseAssign(-3).status().IsInvalidArgument());
}

}  // namespace
}  // namespace ocb
