// Tests for string formatting and the TextTable renderer.

#include "util/format.h"

#include <gtest/gtest.h>

namespace ocb {
namespace {

TEST(FormatTest, BasicSubstitution) {
  EXPECT_EQ(Format("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(Format("%.2f", 3.14159), "3.14");
  EXPECT_EQ(Format("%s", "plain"), "plain");
  EXPECT_EQ(Format("empty"), "empty");
}

TEST(FormatTest, LongStringsAreNotTruncated) {
  const std::string big(5000, 'x');
  EXPECT_EQ(Format("%s", big.c_str()).size(), 5000u);
}

TEST(HumanBytesTest, Units) {
  EXPECT_EQ(HumanBytes(0), "0 B");
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(4096), "4.0 KB");
  EXPECT_EQ(HumanBytes(15 * 1024 * 1024 + 300 * 1024), "15.3 MB");
}

TEST(HumanDurationTest, Units) {
  EXPECT_EQ(HumanDuration(873), "873 ns");
  EXPECT_EQ(HumanDuration(1'240'000), "1.24 ms");
  EXPECT_EQ(HumanDuration(3'500'000'000ull), "3.500 s");
}

TEST(TextTableTest, AlignsColumns) {
  TextTable t({"A", "Bench"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer", "22"});
  const std::string out = t.ToString();
  // Every line has the same width.
  size_t line_len = out.find('\n');
  for (size_t pos = 0; pos < out.size();) {
    const size_t next = out.find('\n', pos);
    ASSERT_NE(next, std::string::npos);
    EXPECT_EQ(next - pos, line_len);
    pos = next + 1;
  }
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("Bench"), std::string::npos);
}

TEST(TextTableTest, PadsShortRows) {
  TextTable t({"A", "B", "C"});
  t.AddRow({"only-one"});
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_NE(t.ToString().find("only-one"), std::string::npos);
}

TEST(TextTableTest, SeparatorRendersRule) {
  TextTable t({"A"});
  t.AddRow({"before"});
  t.AddSeparator();
  t.AddRow({"after"});
  const std::string out = t.ToString();
  const size_t before = out.find("before");
  const size_t after = out.find("after");
  const size_t rule = out.find("+--", before);
  ASSERT_NE(rule, std::string::npos);
  EXPECT_LT(before, rule);
  EXPECT_LT(rule, after);
}

}  // namespace
}  // namespace ocb
