// Tests for the native OO1 (Cattell) benchmark implementation.

#include "legacy/oo1.h"

#include <gtest/gtest.h>

namespace ocb {
namespace {

StorageOptions TestOptions(size_t frames = 64) {
  StorageOptions opts;
  opts.page_size = 4096;
  opts.buffer_pool_pages = frames;
  return opts;
}

OO1Options SmallOO1(uint64_t parts = 400) {
  OO1Options o;
  o.num_parts = parts;
  o.ref_zone = 20;
  o.repetitions = 3;
  o.lookups_per_run = 50;
  o.inserts_per_run = 10;
  o.traversal_depth = 4;
  return o;
}

TEST(OO1Test, BuildCreatesPartsAndConnections) {
  Database db(TestOptions());
  OO1Benchmark oo1(SmallOO1());
  ASSERT_TRUE(oo1.Build(&db).ok());
  // 400 parts + 3 connections each.
  EXPECT_EQ(oo1.part_count(), 400u);
  EXPECT_EQ(db.object_count(), 400u + 3u * 400u);
  EXPECT_EQ(db.schema().GetClass(OO1Benchmark::kPartClass).iterator.size(),
            400u);
  EXPECT_EQ(
      db.schema().GetClass(OO1Benchmark::kConnectionClass).iterator.size(),
      1200u);
}

TEST(OO1Test, EveryConnectionHasFromAndTo) {
  Database db(TestOptions());
  OO1Benchmark oo1(SmallOO1(100));
  ASSERT_TRUE(oo1.Build(&db).ok());
  for (Oid conn :
       db.schema().GetClass(OO1Benchmark::kConnectionClass).iterator) {
    auto obj = db.PeekObject(conn);
    ASSERT_TRUE(obj.ok());
    EXPECT_NE(obj->orefs[0], kInvalidOid);  // From.
    EXPECT_NE(obj->orefs[1], kInvalidOid);  // To.
    // Both ends are parts.
    EXPECT_EQ(db.PeekObject(obj->orefs[0])->class_id,
              OO1Benchmark::kPartClass);
    EXPECT_EQ(db.PeekObject(obj->orefs[1])->class_id,
              OO1Benchmark::kPartClass);
  }
}

TEST(OO1Test, LocalityKeepsMostLinksInRefZone) {
  Database db(TestOptions());
  OO1Options options = SmallOO1(1000);
  options.ref_zone = 10;
  OO1Benchmark oo1(options);
  ASSERT_TRUE(oo1.Build(&db).ok());
  // Map part oid -> index.
  std::map<Oid, int64_t> index_of;
  for (uint64_t i = 0; i < oo1.part_count(); ++i) {
    index_of[oo1.PartOid(i)] = static_cast<int64_t>(i);
  }
  uint64_t local = 0, total = 0;
  for (uint64_t i = 0; i < oo1.part_count(); ++i) {
    auto part = db.PeekObject(oo1.PartOid(i));
    ASSERT_TRUE(part.ok());
    for (Oid conn_oid : part->orefs) {
      if (conn_oid == kInvalidOid) continue;
      auto conn = db.PeekObject(conn_oid);
      ASSERT_TRUE(conn.ok());
      const int64_t target_index = index_of[conn->orefs[1]];
      ++total;
      if (std::abs(target_index - static_cast<int64_t>(i)) <= 10) ++local;
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(local) / static_cast<double>(total), 0.85);
}

TEST(OO1Test, TraversalTouchesExpectedCount) {
  Database db(TestOptions());
  OO1Benchmark oo1(SmallOO1(500));
  ASSERT_TRUE(oo1.Build(&db).ok());
  // Depth d over fan-out 3 visits sum_{i=1..d} 3^i parts and as many
  // connections, plus the root: 1 + 2 * (3 + 9 + 27 + 81) = 241 for d=4.
  auto accessed = oo1.TraverseFrom(oo1.PartOid(0), 4, /*reverse=*/false);
  ASSERT_TRUE(accessed.ok());
  EXPECT_EQ(*accessed, 241u);
}

TEST(OO1Test, FullDepthTraversalMatchesPaper3280) {
  Database db(TestOptions(256));
  OO1Benchmark oo1(SmallOO1(2000));
  ASSERT_TRUE(oo1.Build(&db).ok());
  // OO1's classic count: 3280 parts over 7 hops (with duplicates), i.e.
  // 1 + sum 3^i (i=1..7) = 3280 parts; our count includes the 3279
  // connection objects crossed as well.
  auto accessed = oo1.TraverseFrom(oo1.PartOid(7), 7, false);
  ASSERT_TRUE(accessed.ok());
  EXPECT_EQ(*accessed, 3280u + 3279u);
}

TEST(OO1Test, LookupsRunAndMeasure) {
  Database db(TestOptions());
  OO1Benchmark oo1(SmallOO1());
  ASSERT_TRUE(oo1.Build(&db).ok());
  ASSERT_TRUE(db.ColdRestart().ok());
  auto result = oo1.RunLookups();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->op, "Lookup");
  EXPECT_EQ(result->runs, 3u);
  EXPECT_EQ(result->objects_accessed.mean(), 50.0);
  EXPECT_GT(result->io_reads.mean(), 0.0);
}

TEST(OO1Test, ReverseTraversalRuns) {
  Database db(TestOptions());
  OO1Benchmark oo1(SmallOO1(300));
  ASSERT_TRUE(oo1.Build(&db).ok());
  auto result = oo1.RunTraversals(/*reverse=*/true);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->op, "ReverseTraversal");
  EXPECT_GE(result->objects_accessed.mean(), 1.0);
}

TEST(OO1Test, InsertGrowsTheDatabase) {
  Database db(TestOptions());
  OO1Benchmark oo1(SmallOO1(200));
  ASSERT_TRUE(oo1.Build(&db).ok());
  const uint64_t before = db.object_count();
  auto result = oo1.RunInserts();
  ASSERT_TRUE(result.ok());
  // 3 runs x 10 parts, each with 3 connections.
  EXPECT_EQ(db.object_count(), before + 3u * 10u * 4u);
  EXPECT_EQ(oo1.part_count(), 230u);
}

TEST(OO1Test, BuildRefusesNonEmptyDatabase) {
  Database db(TestOptions());
  OO1Benchmark first(SmallOO1(50));
  ASSERT_TRUE(first.Build(&db).ok());
  OO1Benchmark second(SmallOO1(50));
  EXPECT_TRUE(second.Build(&db).IsInvalidArgument());
}

}  // namespace
}  // namespace ocb
