// Tests for the OO7-small benchmark implementation.

#include "legacy/oo7.h"

#include <gtest/gtest.h>

namespace ocb {
namespace {

StorageOptions TestOptions() {
  StorageOptions opts;
  opts.page_size = 4096;
  opts.buffer_pool_pages = 128;
  return opts;
}

OO7Options TinyOO7() {
  OO7Options o;
  o.assembly_fanout = 2;
  o.assembly_levels = 3;  // 1 + 2 complex, 4 base assemblies.
  o.composite_parts = 20;
  o.atomic_per_composite = 5;
  o.composites_per_base = 2;
  o.document_bytes = 100;
  o.manual_bytes = 100;
  return o;
}

TEST(OO7Test, BuildCreatesExpectedPopulation) {
  Database db(TestOptions());
  OO7Benchmark oo7(TinyOO7());
  ASSERT_TRUE(oo7.Build(&db).ok());
  // 20 composites * (1 + 1 doc + 5 atomics) = 140, plus module + manual,
  // plus assemblies: levels 1..2 complex = 1 + 2 = 3, level 3 base = 4.
  EXPECT_EQ(db.object_count(), 140u + 2u + 3u + 4u);
  EXPECT_EQ(db.schema().GetClass(OO7Benchmark::kBaseAssembly)
                .iterator.size(),
            4u);
  EXPECT_EQ(db.schema().GetClass(OO7Benchmark::kAtomicPart).iterator.size(),
            100u);
}

TEST(OO7Test, AtomicGraphHasFullOutDegree) {
  Database db(TestOptions());
  OO7Benchmark oo7(TinyOO7());
  ASSERT_TRUE(oo7.Build(&db).ok());
  for (Oid atom :
       db.schema().GetClass(OO7Benchmark::kAtomicPart).iterator) {
    auto obj = db.PeekObject(atom);
    ASSERT_TRUE(obj.ok());
    for (Oid ref : obj->orefs) {
      EXPECT_NE(ref, kInvalidOid);
      EXPECT_EQ(db.PeekObject(ref)->class_id, OO7Benchmark::kAtomicPart);
    }
  }
}

TEST(OO7Test, T1TouchesAllReachableAtomicParts) {
  Database db(TestOptions());
  OO7Benchmark oo7(TinyOO7());
  ASSERT_TRUE(oo7.Build(&db).ok());
  ASSERT_TRUE(db.ColdRestart().ok());
  auto t1 = oo7.TraversalT1();
  ASSERT_TRUE(t1.ok());
  // The assembly walk touches module + 3 complex + 4 base = 8 objects,
  // plus per base assembly 2 composites each visited with their 5 atomics.
  // Composites are shared, so the exact count depends on the draw, but it
  // must exceed T6's and include whole atomic graphs.
  auto t6 = oo7.TraversalT6();
  ASSERT_TRUE(t6.ok());
  EXPECT_GT(t1->objects_accessed, t6->objects_accessed);
  EXPECT_GE(t1->objects_accessed,
            8u + 8u * (1u + 5u) / 2u);  // Loose lower bound.
  EXPECT_GT(t1->io_reads, 0u);
}

TEST(OO7Test, T6TouchesOnlyCompositeRoots) {
  Database db(TestOptions());
  OO7Benchmark oo7(TinyOO7());
  ASSERT_TRUE(oo7.Build(&db).ok());
  auto t6 = oo7.TraversalT6();
  ASSERT_TRUE(t6.ok());
  // Upper bound: 8 assembly-path objects + 8 composite visits * 2 objects.
  EXPECT_LE(t6->objects_accessed, 8u + 16u);
}

TEST(OO7Test, QueriesReportCounts) {
  Database db(TestOptions());
  OO7Benchmark oo7(TinyOO7());
  ASSERT_TRUE(oo7.Build(&db).ok());
  auto q1 = oo7.QueryQ1();
  ASSERT_TRUE(q1.ok());
  EXPECT_EQ(q1->objects_accessed, 10u);
  auto q2 = oo7.QueryQ2();
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2->objects_accessed, 100u);  // Full atomic extent scan.
}

TEST(OO7Test, T2UpdatesCommitWrites) {
  Database db(TestOptions());
  OO7Benchmark oo7(TinyOO7());
  ASSERT_TRUE(oo7.Build(&db).ok());
  ASSERT_TRUE(db.ColdRestart().ok());
  const uint64_t writes_before =
      db.disk()->counters(IoScope::kTransaction).writes;
  auto t2a = oo7.TraversalT2a();
  ASSERT_TRUE(t2a.ok());
  EXPECT_EQ(t2a->op, "T2a");
  const uint64_t writes_t2a =
      db.disk()->counters(IoScope::kTransaction).writes - writes_before;
  EXPECT_GT(writes_t2a, 0u);  // Updates were flushed.
  auto t2b = oo7.TraversalT2b();
  ASSERT_TRUE(t2b.ok());
  // T2b touches the same object set as T2a (update count differs, not
  // traversal shape).
  EXPECT_EQ(t2b->objects_accessed, t2a->objects_accessed);
}

TEST(OO7Test, StructuralInsertGrowsPopulation) {
  Database db(TestOptions());
  OO7Benchmark oo7(TinyOO7());
  ASSERT_TRUE(oo7.Build(&db).ok());
  const uint64_t before = db.object_count();
  auto sm1 = oo7.StructuralInsert();
  ASSERT_TRUE(sm1.ok());
  // New composite + document + atomics.
  EXPECT_EQ(db.object_count(), before + 2u + 5u);
}

TEST(OO7Test, StructuralDeleteShrinksPopulation) {
  Database db(TestOptions());
  OO7Benchmark oo7(TinyOO7());
  ASSERT_TRUE(oo7.Build(&db).ok());
  const uint64_t before = db.object_count();
  auto sm2 = oo7.StructuralDelete();
  ASSERT_TRUE(sm2.ok());
  EXPECT_EQ(db.object_count(), before - (2u + 5u));
  // Remaining database is still fully traversable.
  auto t1 = oo7.TraversalT1();
  ASSERT_TRUE(t1.ok());
  EXPECT_GT(t1->objects_accessed, 0u);
}

TEST(OO7Test, InsertThenDeleteIsBalanced) {
  Database db(TestOptions());
  OO7Benchmark oo7(TinyOO7());
  ASSERT_TRUE(oo7.Build(&db).ok());
  const uint64_t start = db.object_count();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(oo7.StructuralInsert().ok());
    ASSERT_TRUE(oo7.StructuralDelete().ok());
  }
  EXPECT_EQ(db.object_count(), start);
}

TEST(OO7Test, BuildDateInRange) {
  for (Oid oid = 1; oid < 500; ++oid) {
    ASSERT_LT(OO7Benchmark::BuildDateOf(oid), 100000u);
  }
}

TEST(OO7Test, DefaultSmallConfigurationBuilds) {
  Database db(TestOptions());
  OO7Options defaults;  // The real small config: 500 composites etc.
  defaults.composite_parts = 100;     // Trimmed for test speed.
  defaults.assembly_levels = 5;
  OO7Benchmark oo7(defaults);
  ASSERT_TRUE(oo7.Build(&db).ok());
  // 100 * (2 + 20) + module/manual + assemblies (1+3+9+27=40 complex,
  // 81 base).
  EXPECT_GT(db.object_count(), 2000u);
  auto t6 = oo7.TraversalT6();
  ASSERT_TRUE(t6.ok());
  EXPECT_GT(t6->objects_accessed, 100u);
}

}  // namespace
}  // namespace ocb
