// Tests for the DSTC-CluB benchmark: before/after reclustering I/O.

#include "legacy/club.h"

#include <gtest/gtest.h>

#include <cmath>

#include "clustering/dstc.h"

namespace ocb {
namespace {

StorageOptions SmallPool() {
  StorageOptions opts;
  opts.page_size = 1024;
  opts.buffer_pool_pages = 16;  // DB >> cache so clustering matters.
  return opts;
}

ClubOptions SmallClub() {
  ClubOptions c;
  c.oo1.num_parts = 1200;
  c.oo1.ref_zone = 100;  // Wide enough to scatter links across many pages.
  c.traversal_depth = 4;
  c.warmup_traversals = 80;
  c.measured_traversals = 30;
  return c;
}

DstcOptions FastDstc() {
  DstcOptions o;
  o.observation_period_transactions = 40;
  o.selection_threshold = 1.0;
  return o;
}

TEST(ClubTest, DstcShowsGainOnPureTraversals) {
  Database db(SmallPool());
  Dstc dstc(FastDstc());
  auto result = RunDstcClub(SmallClub(), &db, &dstc);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->ios_before, 0.0);
  EXPECT_GT(result->ios_after, 0.0);
  EXPECT_GT(result->gain_factor(), 1.2)
      << "before=" << result->ios_before << " after=" << result->ios_after;
  EXPECT_GT(result->clustering_overhead_io, 0u);
}

TEST(ClubTest, NoClusteringGainIsNeutral) {
  Database db(SmallPool());
  NoClustering none;
  auto result = RunDstcClub(SmallClub(), &db, &none);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->gain_factor(), 1.0, 0.10);
  EXPECT_EQ(result->clustering_overhead_io, 0u);
}

TEST(ClubTest, GainFactorHandlesZeroAfter) {
  ClubResult r;
  r.ios_before = 10.0;
  r.ios_after = 0.0;
  EXPECT_TRUE(std::isinf(r.gain_factor()));  // Fully cache-resident after.
  r.ios_before = 0.0;
  EXPECT_EQ(r.gain_factor(), 1.0);  // Nothing to gain.
}

TEST(ClubTest, RequiresEmptyDatabase) {
  Database db(SmallPool());
  Dstc dstc(FastDstc());
  ASSERT_TRUE(RunDstcClub(SmallClub(), &db, &dstc).ok());
  EXPECT_TRUE(RunDstcClub(SmallClub(), &db, &dstc)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace ocb
