// Tests for the HyperModel benchmark implementation.

#include "legacy/hypermodel.h"

#include <gtest/gtest.h>

namespace ocb {
namespace {

StorageOptions TestOptions() {
  StorageOptions opts;
  opts.page_size = 4096;
  opts.buffer_pool_pages = 64;
  return opts;
}

HyperModelOptions SmallModel() {
  HyperModelOptions o;
  o.fanout = 3;
  o.levels = 4;  // 1 + 3 + 9 + 27 + 81 = 121 nodes.
  o.inputs_per_operation = 10;
  o.closure_depth = 3;
  return o;
}

TEST(HyperModelTest, BuildCreatesFullAggregationTree) {
  Database db(TestOptions());
  HyperModelBenchmark hm(SmallModel());
  ASSERT_TRUE(hm.Build(&db).ok());
  EXPECT_EQ(hm.node_count(), 121u);
  EXPECT_EQ(db.object_count(), 121u);
}

TEST(HyperModelTest, EveryNonLeafHasFanoutChildren) {
  Database db(TestOptions());
  HyperModelBenchmark hm(SmallModel());
  ASSERT_TRUE(hm.Build(&db).ok());
  uint64_t full = 0, leaves = 0;
  for (Oid oid : db.object_store()->LiveOids()) {
    auto node = db.PeekObject(oid);
    ASSERT_TRUE(node.ok());
    uint32_t children = 0;
    for (uint32_t c = 0; c < 3; ++c) {
      if (node->orefs[c] != kInvalidOid) ++children;
    }
    if (children == 3) {
      ++full;
    } else if (children == 0) {
      ++leaves;
    } else {
      FAIL() << "partially filled aggregation node";
    }
  }
  EXPECT_EQ(full, 40u);    // 1 + 3 + 9 + 27.
  EXPECT_EQ(leaves, 81u);  // Last level.
}

TEST(HyperModelTest, HundredAttributeInRange) {
  for (Oid oid = 1; oid < 1000; ++oid) {
    const uint32_t h = HyperModelBenchmark::HundredOf(oid);
    ASSERT_LT(h, 100u);
  }
}

TEST(HyperModelTest, AllOperationsRunAndReport) {
  Database db(TestOptions());
  HyperModelBenchmark hm(SmallModel());
  ASSERT_TRUE(hm.Build(&db).ok());
  ASSERT_TRUE(db.ColdRestart().ok());
  auto rows = hm.RunAll();
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 7u);
  for (const auto& row : *rows) {
    EXPECT_FALSE(row.op.empty());
    // Warm runs never cost more I/O than cold runs (same inputs, warmer
    // cache) — HyperModel's protocol exists to expose exactly this.
    EXPECT_LE(row.warm_ios, row.cold_ios) << row.op;
  }
}

TEST(HyperModelTest, SequentialScanTouchesEveryNode) {
  Database db(TestOptions());
  HyperModelBenchmark hm(SmallModel());
  ASSERT_TRUE(hm.Build(&db).ok());
  auto row = hm.SequentialScan();
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->objects_touched, hm.node_count());
}

TEST(HyperModelTest, ClosureTraversalBoundedByDepth) {
  Database db(TestOptions());
  HyperModelBenchmark hm(SmallModel());
  ASSERT_TRUE(hm.Build(&db).ok());
  auto row = hm.ClosureTraversal();
  ASSERT_TRUE(row.ok());
  // From any node, closure depth 3 over fan-out 3 touches at most
  // 1 + 3 + 9 + 27 = 40 nodes per input.
  EXPECT_LE(row->objects_touched, 40u * 10u);
  EXPECT_GE(row->objects_touched, 10u);  // At least each input itself.
}

TEST(HyperModelTest, BuildRefusesNonEmptyDatabase) {
  Database db(TestOptions());
  HyperModelBenchmark first(SmallModel());
  ASSERT_TRUE(first.Build(&db).ok());
  HyperModelBenchmark second(SmallModel());
  EXPECT_TRUE(second.Build(&db).IsInvalidArgument());
}

}  // namespace
}  // namespace ocb
