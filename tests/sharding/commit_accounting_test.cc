// Commit-log force accounting on the sharded deployment. The simulated
// force (StorageOptions::commit_log_force_nanos) must be charged exactly
// once per commit BATCH — never skipped for cross-shard (2PC) commits,
// never double-charged when the real WAL is on — and with real durability
// a cross-shard batch issues exactly one coordinator-side fsync.
//
// Latencies are zeroed except the force, so SimNowNanos deltas count
// forces directly.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "engine/session.h"
#include "sharding/cross_shard_coordinator.h"
#include "sharding/sharded_database.h"
#include "util/format.h"
#include "wal/wal_writer.h"

namespace ocb {
namespace {

constexpr uint64_t kForce = 1'000'000;  // 1 ms per simulated log force.
constexpr uint32_t kShards = 4;

StorageOptions AccountingOptions() {
  StorageOptions opts;
  opts.page_size = 1024;
  opts.buffer_pool_pages = 64;
  opts.read_latency_nanos = 0;
  opts.write_latency_nanos = 0;
  opts.commit_log_force_nanos = kForce;
  return opts;
}

Schema OneClassSchema() {
  Schema schema;
  schema.SetRefTypes(Schema::DefaultTraits(2));
  ClassDescriptor a;
  a.id = 0;
  a.maxnref = 2;
  a.basesize = 24;
  a.instance_size = 24;
  a.tref = {1, 1};
  a.cref = {0, 0};
  Schema out = std::move(schema);
  EXPECT_TRUE(out.AddClass(std::move(a)).ok());
  return out;
}

// Commits one transaction creating \p creates objects (round-robin across
// shards, so creates >= 2 makes it a cross-shard 2PC commit).
void CommitCreates(ShardedDatabase* db, int creates) {
  auto session = db->OpenSession();
  auto txn = session.Begin();
  for (int i = 0; i < creates; ++i) ASSERT_TRUE(txn.Create(0).ok());
  ASSERT_TRUE(txn.Commit().ok());
}

TEST(CommitAccountingTest, FastPathCommitsChargeOneForceEach) {
  ShardedDatabase db(AccountingOptions(), kShards);
  db.SetSchema(OneClassSchema());
  const uint64_t before = db.SimNowNanos();
  for (int i = 0; i < 5; ++i) CommitCreates(&db, 1);
  EXPECT_EQ(db.SimNowNanos() - before, 5 * kForce);
}

TEST(CommitAccountingTest, CrossShardCommitsChargeOneForceEach) {
  // Regression: a 2PC commit writes a commit record like any other — its
  // simulated force must not be skipped just because the write is
  // coordinated.
  ShardedDatabase db(AccountingOptions(), kShards);
  db.SetSchema(OneClassSchema());
  const uint64_t before = db.SimNowNanos();
  for (int i = 0; i < 5; ++i) CommitCreates(&db, 2);
  EXPECT_EQ(db.SimNowNanos() - before, 5 * kForce);
}

TEST(CommitAccountingTest, ConcurrentBatchesChargeExactlyOncePerBatch) {
  // Under the group-commit pipeline the charge amortizes with the batch:
  // however the storm's commits coalesce, total charged time is exactly
  // batches-formed times the force latency.
  ShardedDatabase db(AccountingOptions(), kShards);
  db.SetSchema(OneClassSchema());
  const uint64_t before = db.SimNowNanos();
  const uint64_t batches_before = db.group_commit_stats().batches;
  std::vector<std::thread> workers;
  for (int t = 0; t < 6; ++t) {
    workers.emplace_back([&db]() {
      for (int i = 0; i < 10; ++i) CommitCreates(&db, 2);
    });
  }
  for (std::thread& w : workers) w.join();
  const uint64_t batches = db.group_commit_stats().batches - batches_before;
  EXPECT_GE(batches, 1u);
  EXPECT_LE(batches, 60u);
  EXPECT_EQ(db.SimNowNanos() - before, batches * kForce);
}

TEST(CommitAccountingTest, RealWalCrossShardBatchForcesCoordinatorOnce) {
  // With the real WAL on, a cross-shard batch's coordinator log sees
  // exactly ONE fsync (the marker force before the ack) — participant
  // shard logs are forced separately, and the simulated charge stays one
  // per batch (no double-charging next to the real fsyncs).
  const std::string wal =
      testing::TempDir() + "/ocb_commit_accounting_test.wal";
  StorageOptions opts = AccountingOptions();
  opts.wal_path = wal;
  {
    ShardedDatabase db(opts, kShards);
    db.SetSchema(OneClassSchema());
    ASSERT_TRUE(db.wal_enabled());
    const uint64_t before = db.SimNowNanos();
    for (int i = 0; i < 5; ++i) CommitCreates(&db, 2);
    EXPECT_EQ(db.SimNowNanos() - before, 5 * kForce);
    EXPECT_EQ(db.coordinator()->coord_wal()->forces(), 5u);
  }
  std::remove((wal + ".coord").c_str());
  for (uint32_t k = 0; k < kShards; ++k) {
    std::remove((wal + Format(".shard%u", k)).c_str());
  }
}

}  // namespace
}  // namespace ocb
