// CrossShardCoordinator tests through the Session API: the single-shard
// fast path takes no coordinator 2PC state, cross-shard transactions
// commit atomically (an abort injected between prepare and commit rolls
// every shard back), and cross-shard MVCC snapshots are consistent — a
// reader never sees shard A's half of a commit without shard B's,
// single-threaded and under a multi-threaded writer/reader stress.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "engine/session.h"
#include "sharding/sharded_database.h"

namespace ocb {
namespace {

StorageOptions TestOptions() {
  StorageOptions opts;
  opts.page_size = 1024;
  opts.buffer_pool_pages = 64;
  return opts;
}

Schema TwoClassSchema() {
  Schema schema;
  schema.SetRefTypes(Schema::DefaultTraits(3));
  ClassDescriptor a;
  a.id = 0;
  a.maxnref = 3;
  a.basesize = 40;
  a.instance_size = 40;
  a.tref = {2, 2, 2};
  a.cref = {1, 1, 0};
  ClassDescriptor b;
  b.id = 1;
  b.maxnref = 2;
  b.basesize = 20;
  b.instance_size = 20;
  b.tref = {2, 2};
  b.cref = {0, 0};
  Schema out = std::move(schema);
  EXPECT_TRUE(out.AddClass(std::move(a)).ok());
  EXPECT_TRUE(out.AddClass(std::move(b)).ok());
  return out;
}

class CrossShardTest : public ::testing::Test {
 protected:
  CrossShardTest() : db_(TestOptions(), 2) {
    db_.SetSchema(TwoClassSchema());
    // Round-robin creation on two shards: a_ and t1_ land on shard 0,
    // b_ and t2_ on shard 1 (oids 1..4).
    a_ = *db_.CreateObject(0);
    b_ = *db_.CreateObject(0);
    t1_ = *db_.CreateObject(1);
    t2_ = *db_.CreateObject(1);
    EXPECT_EQ(db_.router().ShardOf(a_), 0u);
    EXPECT_EQ(db_.router().ShardOf(b_), 1u);
    EXPECT_EQ(db_.router().ShardOf(t1_), 0u);
    EXPECT_EQ(db_.router().ShardOf(t2_), 1u);
  }

  ShardedSessionTransaction Begin() { return db_.OpenSession().Begin(); }
  ShardedSessionTransaction BeginReader() {
    TxnOptions options;
    options.read_only = true;
    return db_.OpenSession().Begin(options);
  }

  ShardedDatabase db_;
  Oid a_ = kInvalidOid;
  Oid b_ = kInvalidOid;
  Oid t1_ = kInvalidOid;
  Oid t2_ = kInvalidOid;
};

TEST_F(CrossShardTest, SingleShardFastPathSkips2pc) {
  const CrossShardStats before = db_.coordinator()->stats();
  // a_ → t1_ stays entirely on shard 0.
  auto txn = Begin();
  ASSERT_TRUE(txn.SetReference(a_, 0, t1_).ok());
  EXPECT_EQ(txn.shards_touched(), 1u);
  EXPECT_FALSE(txn.cross_shard());
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_EQ(txn.twopc_nanos(), 0u);

  const CrossShardStats after = db_.coordinator()->stats();
  EXPECT_EQ(after.fast_path_commits, before.fast_path_commits + 1);
  EXPECT_EQ(after.cross_shard_commits, before.cross_shard_commits);
  EXPECT_EQ(after.prepares, before.prepares);  // No prepare phase at all.
}

TEST_F(CrossShardTest, CrossShardCommitRunsTwoPhase) {
  const CrossShardStats before = db_.coordinator()->stats();
  // a_ (shard 0) → t2_ (shard 1): writes land on both shards.
  auto txn = Begin();
  ASSERT_TRUE(txn.SetReference(a_, 0, t2_).ok());
  EXPECT_TRUE(txn.cross_shard());
  ASSERT_TRUE(txn.Commit().ok());

  const CrossShardStats after = db_.coordinator()->stats();
  EXPECT_EQ(after.cross_shard_commits, before.cross_shard_commits + 1);
  EXPECT_EQ(after.prepares, before.prepares + 2);
  // Both halves landed: the oref on shard 0, the backref on shard 1.
  EXPECT_EQ(db_.PeekObject(a_)->orefs[0], t2_);
  const auto backs = db_.PeekObject(t2_)->backrefs;
  EXPECT_NE(std::find(backs.begin(), backs.end(), a_), backs.end());
}

TEST_F(CrossShardTest, InjectedAbortBetweenPrepareAndCommitRollsBackBoth) {
  ASSERT_TRUE(db_.SetReference(a_, 0, t1_).ok());  // Baseline state.

  db_.coordinator()->SetCommitFailpoint([]() { return true; });
  auto txn = Begin();
  ASSERT_TRUE(txn.SetReference(a_, 0, t2_).ok());
  Status commit = txn.Commit();
  db_.coordinator()->SetCommitFailpoint(nullptr);
  EXPECT_TRUE(commit.IsAborted()) << commit.ToString();
  EXPECT_EQ(db_.coordinator()->stats().injected_aborts, 1u);

  // Atomicity: neither shard kept its half. Shard 0's oref still points
  // at t1_, shard 1's backref array never gained a_.
  EXPECT_EQ(db_.PeekObject(a_)->orefs[0], t1_);
  const auto backs = db_.PeekObject(t2_)->backrefs;
  EXPECT_EQ(std::find(backs.begin(), backs.end(), a_), backs.end());
  // And t1_ kept its backref (the unlink rolled back too).
  const auto kept = db_.PeekObject(t1_)->backrefs;
  EXPECT_NE(std::find(kept.begin(), kept.end(), a_), kept.end());

  // The same commit succeeds once the failpoint is gone.
  auto retry = Begin();
  ASSERT_TRUE(retry.SetReference(a_, 0, t2_).ok());
  ASSERT_TRUE(retry.Commit().ok());
  EXPECT_EQ(db_.PeekObject(a_)->orefs[0], t2_);
}

TEST_F(CrossShardTest, SnapshotNeverSeesHalfACrossShardCommit) {
  // Writer transactions keep the invariant a_.orefs[0] == b_.orefs[0]
  // (both halves set in one transaction, each half on its own shard).
  auto setup = Begin();
  ASSERT_TRUE(setup.SetReference(a_, 0, t1_).ok());
  ASSERT_TRUE(setup.SetReference(b_, 0, t1_).ok());
  ASSERT_TRUE(setup.Commit().ok());

  // A reader pinned before the next commit must see the old pair on both
  // shards even while the writer is mid-flight.
  auto reader = BeginReader();

  auto writer = Begin();
  ASSERT_TRUE(writer.SetReference(a_, 0, t2_).ok());
  // Reader reads while the writer holds dirty state on both shards.
  auto mid_a = reader.Get(a_);
  ASSERT_TRUE(mid_a.ok());
  EXPECT_EQ(mid_a->orefs[0], t1_);
  ASSERT_TRUE(writer.SetReference(b_, 0, t2_).ok());
  ASSERT_TRUE(writer.Commit().ok());

  // Still the old, consistent pair after the commit (repeatable read) —
  // read as one batched GetMany through the per-shard ReadViews.
  auto old_pair = reader.GetMany(std::vector<Oid>{a_, b_});
  ASSERT_TRUE(old_pair.ok());
  ASSERT_EQ(old_pair->size(), 2u);
  EXPECT_EQ((*old_pair)[0].orefs[0], t1_);
  EXPECT_EQ((*old_pair)[1].orefs[0], t1_);
  ASSERT_TRUE(reader.Commit().ok());

  // A fresh reader sees the new, consistent pair.
  auto fresh = BeginReader();
  EXPECT_EQ(fresh.Get(a_)->orefs[0], t2_);
  EXPECT_EQ(fresh.Get(b_)->orefs[0], t2_);
  ASSERT_TRUE(fresh.Commit().ok());
}

TEST_F(CrossShardTest, SnapshotConsistencyUnderConcurrentWriters) {
  // Invariant per committed transaction: a_.orefs[0] == b_.orefs[0].
  auto setup = Begin();
  ASSERT_TRUE(setup.SetReference(a_, 0, t1_).ok());
  ASSERT_TRUE(setup.SetReference(b_, 0, t1_).ok());
  ASSERT_TRUE(setup.Commit().ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn_reads{0};
  std::atomic<uint64_t> reads_done{0};

  // The writer churns until every reader finished its quota, so each of
  // the readers' snapshots races live cross-shard commits.
  std::thread writer([&]() {
    auto session = db_.OpenSession();
    const Oid targets[2] = {t1_, t2_};
    for (uint64_t i = 0; !stop.load(); ++i) {
      const Oid target = targets[i % 2];
      auto txn = session.Begin();
      Status st = txn.SetReference(a_, 0, target);
      if (st.ok()) st = txn.SetReference(b_, 0, target);
      if (st.ok()) {
        txn.Commit();
      } else {
        txn.Abort();
      }
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&]() {
      auto session = db_.OpenSession();
      TxnOptions ro;
      ro.read_only = true;
      for (int i = 0; i < 200; ++i) {
        auto txn = session.Begin(ro);
        auto oa = txn.Get(a_);
        auto ob = txn.Get(b_);
        if (oa.ok() && ob.ok()) {
          if (oa->orefs[0] != ob->orefs[0]) {
            torn_reads.fetch_add(1);
          }
          reads_done.fetch_add(1);
        }
        txn.Commit();
      }
    });
  }
  for (auto& t : readers) t.join();
  stop.store(true);
  writer.join();

  EXPECT_EQ(torn_reads.load(), 0u)
      << "a snapshot saw one shard's half of a cross-shard commit";
  EXPECT_GT(reads_done.load(), 0u);
}

TEST_F(CrossShardTest, FastPathSnapshotConsistencyUnderConcurrentWriters) {
  // Same invariant as the cross-shard stress, but the writer's whole
  // footprint lives on shard 0, so every commit takes the fast path —
  // whose stamping runs outside the coordinator commit mutex. The
  // in-flight registry must keep readers from pinning S >= a commit
  // whose versions are only half stamped (regression: a reader saw one
  // object's new value and the other's pre-image under one snapshot).
  const Oid e = *db_.CreateObject(0);   // oid 5, shard 0.
  (void)*db_.CreateObject(1);           // oid 6, shard 1 (spacer).
  const Oid g = *db_.CreateObject(1);   // oid 7, shard 0.
  ASSERT_EQ(db_.router().ShardOf(e), 0u);
  ASSERT_EQ(db_.router().ShardOf(g), 0u);

  auto setup = Begin();
  ASSERT_TRUE(setup.SetReference(a_, 0, t1_).ok());
  ASSERT_TRUE(setup.SetReference(e, 0, t1_).ok());
  ASSERT_TRUE(setup.Commit().ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn_reads{0};

  std::thread writer([&]() {
    auto session = db_.OpenSession();
    const Oid targets[2] = {t1_, g};
    for (uint64_t i = 0; !stop.load(); ++i) {
      const Oid target = targets[i % 2];
      auto txn = session.Begin();
      Status st = txn.SetReference(a_, 0, target);
      if (st.ok()) st = txn.SetReference(e, 0, target);
      if (st.ok()) {
        txn.Commit();
      } else {
        txn.Abort();
      }
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&]() {
      auto session = db_.OpenSession();
      TxnOptions ro;
      ro.read_only = true;
      for (int i = 0; i < 200; ++i) {
        auto txn = session.Begin(ro);
        auto oa = txn.Get(a_);
        auto oe = txn.Get(e);
        if (oa.ok() && oe.ok() && oa->orefs[0] != oe->orefs[0]) {
          torn_reads.fetch_add(1);
        }
        txn.Commit();
      }
    });
  }
  for (auto& t : readers) t.join();
  stop.store(true);
  writer.join();

  EXPECT_EQ(torn_reads.load(), 0u)
      << "a snapshot saw half of a fast-path (single-shard) commit";
  // These commits really took the fast path: no prepares happened.
  EXPECT_EQ(db_.coordinator()->stats().prepares, 0u);
}

TEST_F(CrossShardTest, PerShardQuiesceLeavesOtherShardsRunning) {
  // Reorganizers and snapshot save/load quiesce ONE shard; traffic whose
  // footprint avoids it proceeds. Under the old global big-latch this
  // commit would deadlock against the guard.
  Database::QuiesceGuard guard(db_.shard(0));
  auto txn = Begin();
  ASSERT_TRUE(txn.SetReference(b_, 0, t2_).ok());  // Shard 1.
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_EQ(db_.shard(1)->PeekObject(b_)->orefs[0], t2_);
}

TEST_F(CrossShardTest, ReadOnlyTxnRefusesWritesAndFallsBackWithoutMvcc) {
  auto reader = BeginReader();
  EXPECT_TRUE(reader.read_only());
  EXPECT_TRUE(reader.SetReference(a_, 0, t1_).IsInvalidArgument());
  EXPECT_TRUE(reader.Commit().ok());

  db_.SetMvccEnabled(false);
  TxnOptions ro;
  ro.read_only = true;
  auto locked = db_.OpenSession().Begin(ro);
  EXPECT_FALSE(locked.read_only());  // Downgraded to a locking txn.
  EXPECT_TRUE(locked.Commit().ok());
  db_.SetMvccEnabled(true);
}

}  // namespace
}  // namespace ocb
