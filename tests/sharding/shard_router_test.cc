// ShardRouter and oid-partitioning tests: routing is a stable pure
// function of the oid, allocation and routing agree (every object lives
// on the shard that owns its oid), the global oid sequence stays dense at
// every shard count, and one generation seed produces the identical
// logical object graph on a single Database, a degenerate SHARDN=1
// ShardedDatabase and a SHARDN=4 ShardedDatabase.

#include <gtest/gtest.h>

#include <cstdio>

#include "ocb/generator.h"
#include "ocb/parameters.h"
#include "sharding/shard_router.h"
#include "sharding/sharded_database.h"

namespace ocb {
namespace {

StorageOptions TestOptions() {
  StorageOptions opts;
  opts.page_size = 1024;
  opts.buffer_pool_pages = 64;
  return opts;
}

Schema TwoClassSchema() {
  Schema schema;
  schema.SetRefTypes(Schema::DefaultTraits(3));
  ClassDescriptor a;
  a.id = 0;
  a.maxnref = 3;
  a.basesize = 40;
  a.instance_size = 40;
  a.tref = {2, 2, 2};
  a.cref = {1, 1, 0};
  ClassDescriptor b;
  b.id = 1;
  b.maxnref = 2;
  b.basesize = 20;
  b.instance_size = 20;
  b.tref = {2, 2};
  b.cref = {0, 0};
  Schema out = std::move(schema);
  EXPECT_TRUE(out.AddClass(std::move(a)).ok());
  EXPECT_TRUE(out.AddClass(std::move(b)).ok());
  return out;
}

DatabaseParameters SmallDatabase() {
  DatabaseParameters params;
  params.num_classes = 6;
  params.max_nref = 3;
  params.base_size = 30;
  params.num_objects = 300;
  params.seed = 77;
  return params;
}

TEST(ShardRouterTest, RoutingIsStableAndMatchesAllocation) {
  for (uint32_t n : {1u, 2u, 3u, 4u, 8u}) {
    ShardRouter router(n);
    ASSERT_EQ(router.shard_count(), n);
    ASSERT_EQ(router.OidStride(), n);
    for (uint32_t k = 0; k < n; ++k) {
      // Every member of shard k's allocation progression routes to k.
      Oid oid = router.FirstOidFor(k);
      for (int step = 0; step < 50; ++step, oid += router.OidStride()) {
        ASSERT_EQ(router.ShardOf(oid), k)
            << "oid " << oid << " with " << n << " shards";
        // Stability: recomputing gives the same answer.
        ASSERT_EQ(router.ShardOf(oid), router.ShardOf(oid));
      }
    }
    // The progressions tile the oid space: 1..200 all route somewhere.
    for (Oid oid = 1; oid <= 200; ++oid) {
      ASSERT_LT(router.ShardOf(oid), n);
    }
  }
}

TEST(ShardRouterTest, CreatedObjectsLiveOnTheirRoutedShard) {
  ShardedDatabase db(TestOptions(), 4);
  db.SetSchema(TwoClassSchema());
  for (int i = 0; i < 40; ++i) {
    auto oid = db.CreateObject(i % 2);
    ASSERT_TRUE(oid.ok());
    const uint32_t owner = db.router().ShardOf(*oid);
    EXPECT_TRUE(db.shard(owner)->ContainsObject(*oid));
    for (uint32_t k = 0; k < db.shard_count(); ++k) {
      if (k != owner) {
        EXPECT_FALSE(db.shard(k)->ContainsObject(*oid));
      }
    }
  }
}

TEST(ShardRouterTest, GlobalOidSequenceStaysDense) {
  for (uint32_t n : {1u, 2u, 3u, 4u}) {
    ShardedDatabase db(TestOptions(), n);
    db.SetSchema(TwoClassSchema());
    // Round-robin creation over strided per-shard progressions must give
    // the dense global sequence 1, 2, 3, … for every shard count.
    for (Oid expected = 1; expected <= 24; ++expected) {
      auto oid = db.CreateObject(0);
      ASSERT_TRUE(oid.ok());
      EXPECT_EQ(*oid, expected) << "with " << n << " shards";
    }
  }
}

TEST(ShardRouterTest, GenerationIsLogicallyIdenticalAcrossShardCounts) {
  const DatabaseParameters params = SmallDatabase();

  Database single(TestOptions());
  ASSERT_TRUE(GenerateDatabase(params, &single).ok());

  ShardedDatabase degenerate(TestOptions(), 1);
  ASSERT_TRUE(GenerateDatabase(params, &degenerate).ok());

  ShardedDatabase sharded(TestOptions(), 4);
  ASSERT_TRUE(GenerateDatabase(params, &sharded).ok());

  const std::vector<Oid> oids = single.LiveOidsSnapshot();
  ASSERT_EQ(degenerate.LiveOidsSnapshot(), oids);
  ASSERT_EQ(sharded.LiveOidsSnapshot(), oids);
  for (Oid oid : oids) {
    auto a = single.PeekObject(oid);
    auto b = degenerate.PeekObject(oid);
    auto c = sharded.PeekObject(oid);
    ASSERT_TRUE(a.ok() && b.ok() && c.ok());
    EXPECT_EQ(a->class_id, b->class_id);
    EXPECT_EQ(a->class_id, c->class_id);
    EXPECT_EQ(a->orefs, b->orefs);
    EXPECT_EQ(a->orefs, c->orefs);
    EXPECT_EQ(a->backrefs, b->backrefs);
    EXPECT_EQ(a->backrefs, c->backrefs);
  }
}

TEST(ShardRouterTest, ShardedSnapshotRoundTrips) {
  const DatabaseParameters params = SmallDatabase();
  const std::string path = "sharded_snapshot_test.ocbsnap";

  ShardedDatabase original(TestOptions(), 2);
  ASSERT_TRUE(GenerateDatabase(params, &original).ok());
  ASSERT_TRUE(SaveShardedSnapshot(&original, path).ok());

  ShardedDatabase reloaded(TestOptions(), 2);
  ASSERT_TRUE(LoadShardedSnapshot(&reloaded, path).ok());
  for (uint32_t k = 0; k < 2; ++k) {
    std::remove((path + ".shard" + std::to_string(k)).c_str());
  }

  ASSERT_EQ(reloaded.object_count(), original.object_count());
  ASSERT_EQ(reloaded.LiveOidsSnapshot(), original.LiveOidsSnapshot());
  for (Oid oid : original.LiveOidsSnapshot()) {
    auto a = original.PeekObject(oid);
    auto b = reloaded.PeekObject(oid);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->orefs, b->orefs);
    EXPECT_EQ(a->backrefs, b->backrefs);
  }
  // Post-load creation continues the per-shard progressions without
  // colliding with loaded oids.
  auto fresh = reloaded.CreateObject(0);
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(original.ContainsObject(*fresh));
  EXPECT_TRUE(reloaded.ContainsObject(*fresh));
}

}  // namespace
}  // namespace ocb
