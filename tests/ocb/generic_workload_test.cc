// Tests for the generic transaction-set extension (paper §5): Update,
// Insert, Delete and Scan transactions beyond the clustering-oriented
// four of Fig. 3.

#include <gtest/gtest.h>

#include "ocb/generator.h"
#include "ocb/protocol.h"
#include "ocb/transaction.h"

namespace ocb {
namespace {

StorageOptions TestOptions() {
  StorageOptions opts;
  opts.page_size = 4096;
  opts.buffer_pool_pages = 64;
  return opts;
}

DatabaseParameters SmallDb() {
  DatabaseParameters p;
  p.num_classes = 4;
  p.num_objects = 200;
  p.max_nref = 3;
  p.base_size = 30;
  p.seed = 3;
  return p;
}

class GenericWorkloadTest : public ::testing::Test {
 protected:
  GenericWorkloadTest() : db_(TestOptions()) {
    EXPECT_TRUE(GenerateDatabase(SmallDb(), &db_).ok());
  }

  Oid AnyRoot() { return db_.object_store()->LiveOids().front(); }

  Database db_;
  WorkloadParameters params_;
  LewisPayneRng rng_{99};
};

TEST_F(GenericWorkloadTest, DefaultsKeepExtensionDisabled) {
  const WorkloadParameters defaults;
  EXPECT_EQ(defaults.p_update, 0.0);
  EXPECT_EQ(defaults.p_insert, 0.0);
  EXPECT_EQ(defaults.p_delete, 0.0);
  EXPECT_EQ(defaults.p_scan, 0.0);
  EXPECT_TRUE(defaults.Validate().ok());
}

TEST_F(GenericWorkloadTest, ExtendedProbabilitiesValidate) {
  WorkloadParameters p;
  p.p_set = 0.2;
  p.p_simple = 0.2;
  p.p_hierarchy = 0.1;
  p.p_stochastic = 0.1;
  p.p_update = 0.1;
  p.p_insert = 0.1;
  p.p_delete = 0.1;
  p.p_scan = 0.1;
  EXPECT_TRUE(p.Validate().ok());
  p.p_scan = 0.5;  // Sum > 1.
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
}

TEST_F(GenericWorkloadTest, TypeNames) {
  EXPECT_STREQ(TransactionTypeToString(TransactionType::kUpdate), "Update");
  EXPECT_STREQ(TransactionTypeToString(TransactionType::kInsert), "Insert");
  EXPECT_STREQ(TransactionTypeToString(TransactionType::kDelete), "Delete");
  EXPECT_STREQ(TransactionTypeToString(TransactionType::kScan), "Scan");
}

TEST_F(GenericWorkloadTest, UpdateRewritesWithoutStructuralChange) {
  const Oid root = AnyRoot();
  const uint64_t count_before = db_.object_count();
  TransactionExecutor executor(&db_, params_);
  auto result =
      executor.Execute(TransactionType::kUpdate, root, false, &rng_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->objects_accessed, 1u);
  EXPECT_EQ(db_.object_count(), count_before);
  EXPECT_TRUE(db_.PeekObject(root).ok());
}

TEST_F(GenericWorkloadTest, InsertGrowsExtentAndWiresReferences) {
  const Oid root = AnyRoot();
  const ClassId cls = db_.PeekObject(root)->class_id;
  const size_t extent_before =
      db_.schema().GetClass(cls).iterator.size();
  const uint64_t count_before = db_.object_count();

  TransactionExecutor executor(&db_, params_);
  auto result =
      executor.Execute(TransactionType::kInsert, root, false, &rng_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(db_.object_count(), count_before + 1);
  const auto& extent = db_.schema().GetClass(cls).iterator;
  ASSERT_EQ(extent.size(), extent_before + 1);
  // The new object's bound references follow the schema and keep backref
  // symmetry.
  const Oid created = extent.back();
  auto obj = db_.PeekObject(created);
  ASSERT_TRUE(obj.ok());
  const ClassDescriptor& descriptor = db_.schema().GetClass(cls);
  for (uint32_t k = 0; k < descriptor.maxnref; ++k) {
    const Oid target = obj->orefs[k];
    if (target == kInvalidOid) continue;
    auto target_obj = db_.PeekObject(target);
    ASSERT_TRUE(target_obj.ok());
    EXPECT_EQ(target_obj->class_id, descriptor.cref[k]);
    EXPECT_NE(std::find(target_obj->backrefs.begin(),
                        target_obj->backrefs.end(), created),
              target_obj->backrefs.end());
  }
}

TEST_F(GenericWorkloadTest, DeleteRemovesRoot) {
  const Oid root = AnyRoot();
  TransactionExecutor executor(&db_, params_);
  auto result =
      executor.Execute(TransactionType::kDelete, root, false, &rng_);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(db_.object_store()->Contains(root));
  // Deleting again: root read fails with NotFound at the transaction
  // level (the protocol tolerates it).
  auto again =
      executor.Execute(TransactionType::kDelete, root, false, &rng_);
  EXPECT_TRUE(again.status().IsNotFound());
}

TEST_F(GenericWorkloadTest, ScanTouchesWholeExtent) {
  const Oid root = AnyRoot();
  const ClassId cls = db_.PeekObject(root)->class_id;
  const size_t extent_size = db_.schema().GetClass(cls).iterator.size();
  TransactionExecutor executor(&db_, params_);
  auto result =
      executor.Execute(TransactionType::kScan, root, false, &rng_);
  ASSERT_TRUE(result.ok());
  // Root + every extent member (root counted twice, as a duplicate).
  EXPECT_EQ(result->objects_accessed, 1u + extent_size);
}

TEST_F(GenericWorkloadTest, DrawTypeCoversExtension) {
  params_.p_set = 0.0;
  params_.p_simple = 0.0;
  params_.p_hierarchy = 0.0;
  params_.p_stochastic = 0.0;
  params_.p_update = 0.25;
  params_.p_insert = 0.25;
  params_.p_delete = 0.25;
  params_.p_scan = 0.25;
  TransactionExecutor executor(&db_, params_);
  std::array<int, kNumTransactionTypes> counts{};
  for (int i = 0; i < 4000; ++i) {
    ++counts[static_cast<size_t>(executor.DrawType(&rng_))];
  }
  EXPECT_EQ(counts[static_cast<size_t>(TransactionType::kSetOriented)], 0);
  for (auto type : {TransactionType::kUpdate, TransactionType::kInsert,
                    TransactionType::kDelete, TransactionType::kScan}) {
    EXPECT_NEAR(counts[static_cast<size_t>(type)] / 4000.0, 0.25, 0.04)
        << TransactionTypeToString(type);
  }
}

TEST_F(GenericWorkloadTest, ProtocolSurvivesChurn) {
  // A mixed read/write workload with deletes and inserts runs to
  // completion and keeps the database consistent.
  WorkloadParameters w;
  w.p_set = 0.2;
  w.p_simple = 0.2;
  w.p_hierarchy = 0.0;
  w.p_stochastic = 0.2;
  w.p_update = 0.15;
  w.p_insert = 0.15;
  w.p_delete = 0.1;
  w.p_scan = 0.0;
  w.cold_transactions = 50;
  w.hot_transactions = 200;
  w.set_depth = 2;
  w.simple_depth = 2;
  w.stochastic_depth = 8;
  w.seed = 31;
  ASSERT_TRUE(db_.ColdRestart().ok());
  ProtocolRunner runner(&db_, w);
  auto metrics = runner.Run();
  ASSERT_TRUE(metrics.ok());
  EXPECT_GT(metrics->warm.global.transactions, 0u);
  // Post-churn invariant: backref symmetry still holds everywhere.
  for (Oid oid : db_.object_store()->LiveOids()) {
    auto obj = db_.PeekObject(oid);
    ASSERT_TRUE(obj.ok());
    for (Oid target : obj->orefs) {
      if (target == kInvalidOid) continue;
      auto target_obj = db_.PeekObject(target);
      ASSERT_TRUE(target_obj.ok()) << "dangling ref from " << oid;
      EXPECT_NE(std::find(target_obj->backrefs.begin(),
                          target_obj->backrefs.end(), oid),
                target_obj->backrefs.end());
    }
  }
}

}  // namespace
}  // namespace ocb
