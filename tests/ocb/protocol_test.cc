// Tests for the cold/warm protocol runner and the multi-client runner.

#include "ocb/protocol.h"

#include <gtest/gtest.h>

#include "ocb/client.h"
#include "ocb/generator.h"

namespace ocb {
namespace {

StorageOptions TestOptions() {
  StorageOptions opts;
  opts.page_size = 4096;
  opts.buffer_pool_pages = 32;
  return opts;
}

DatabaseParameters SmallDb() {
  DatabaseParameters p;
  p.num_classes = 4;
  p.num_objects = 300;
  p.max_nref = 3;
  p.base_size = 30;
  p.seed = 3;
  return p;
}

WorkloadParameters SmallWorkload() {
  WorkloadParameters w;
  w.cold_transactions = 40;
  w.hot_transactions = 120;
  w.set_depth = 2;
  w.simple_depth = 2;
  w.hierarchy_depth = 3;
  w.stochastic_depth = 10;
  w.seed = 5;
  return w;
}

class ProtocolTest : public ::testing::Test {
 protected:
  ProtocolTest() : db_(TestOptions()) {
    EXPECT_TRUE(GenerateDatabase(SmallDb(), &db_).ok());
    EXPECT_TRUE(db_.ColdRestart().ok());
  }
  Database db_;
};

TEST_F(ProtocolTest, RunsExactlyColdnPlusHotn) {
  ProtocolRunner runner(&db_, SmallWorkload());
  auto metrics = runner.Run();
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->cold.global.transactions, 40u);
  EXPECT_EQ(metrics->warm.global.transactions, 120u);
  uint64_t per_type_total = 0;
  for (const auto& t : metrics->warm.per_type) {
    per_type_total += t.transactions;
  }
  EXPECT_EQ(per_type_total, 120u);
}

TEST_F(ProtocolTest, TypeMixTracksProbabilities) {
  WorkloadParameters w = SmallWorkload();
  w.hot_transactions = 2000;
  w.p_set = 1.0;
  w.p_simple = 0.0;
  w.p_hierarchy = 0.0;
  w.p_stochastic = 0.0;
  ProtocolRunner runner(&db_, w);
  auto metrics = runner.Run();
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->warm
                .per_type[static_cast<size_t>(TransactionType::kSetOriented)]
                .transactions,
            2000u);
  EXPECT_EQ(
      metrics->warm
          .per_type[static_cast<size_t>(TransactionType::kSimpleTraversal)]
          .transactions,
      0u);
}

TEST_F(ProtocolTest, MetricsAreInternallyConsistent) {
  ProtocolRunner runner(&db_, SmallWorkload());
  auto metrics = runner.Run();
  ASSERT_TRUE(metrics.ok());
  // Mean objects >= 1 (the root is always accessed).
  EXPECT_GE(metrics->warm.global.objects_accessed.mean(), 1.0);
  // Transaction I/O totals equal the per-transaction sums.
  EXPECT_NEAR(metrics->warm.global.io_reads.sum(),
              static_cast<double>(metrics->warm.transaction_io_reads), 1e-9);
  // Buffer accounting: some hits once the cache is warm.
  EXPECT_GT(metrics->warm.buffer_hits, 0u);
}

TEST_F(ProtocolTest, WarmRunBenefitsFromCache) {
  // With a pool large enough to hold the whole small database, the warm
  // run must do (almost) no I/O compared to the cold run.
  ProtocolRunner runner(&db_, SmallWorkload());
  auto metrics = runner.Run();
  ASSERT_TRUE(metrics.ok());
  EXPECT_LT(metrics->warm.mean_ios_per_transaction(),
            metrics->cold.mean_ios_per_transaction() + 1e-9);
}

TEST_F(ProtocolTest, ThinkTimeAdvancesSimClock) {
  WorkloadParameters w = SmallWorkload();
  w.cold_transactions = 10;
  w.hot_transactions = 10;
  w.think_nanos = 1'000'000;
  const uint64_t start = db_.sim_clock()->now_nanos();
  ProtocolRunner runner(&db_, w);
  ASSERT_TRUE(runner.Run().ok());
  EXPECT_GE(db_.sim_clock()->now_nanos() - start, 20u * 1'000'000u);
}

TEST_F(ProtocolTest, InvalidWorkloadRejected) {
  WorkloadParameters w = SmallWorkload();
  w.p_set = 0.9;  // Sum != 1.
  ProtocolRunner runner(&db_, w);
  EXPECT_TRUE(runner.Run().status().IsInvalidArgument());
}

TEST_F(ProtocolTest, RunPhaseAccumulates) {
  ProtocolRunner runner(&db_, SmallWorkload());
  PhaseMetrics phase;
  ASSERT_TRUE(runner.RunPhase(25, &phase).ok());
  ASSERT_TRUE(runner.RunPhase(25, &phase).ok());
  EXPECT_EQ(phase.global.transactions, 50u);
}

TEST_F(ProtocolTest, ResponsePercentilesAreOrdered) {
  ProtocolRunner runner(&db_, SmallWorkload());
  auto metrics = runner.Run();
  ASSERT_TRUE(metrics.ok());
  const TypeMetrics& g = metrics->warm.global;
  ASSERT_EQ(g.response_histogram.count(), g.transactions);
  EXPECT_LE(g.response_histogram.Percentile(50),
            g.response_histogram.Percentile(99));
  EXPECT_LE(g.response_histogram.Percentile(99),
            g.response_histogram.max());
  const std::string table = metrics->warm.ToTableString("warm");
  EXPECT_NE(table.find("p50"), std::string::npos);
  EXPECT_NE(table.find("p99"), std::string::npos);
}

TEST_F(ProtocolTest, PhaseTableRendersAllTypes) {
  ProtocolRunner runner(&db_, SmallWorkload());
  auto metrics = runner.Run();
  ASSERT_TRUE(metrics.ok());
  const std::string table = metrics->warm.ToTableString("warm");
  EXPECT_NE(table.find("SetOriented"), std::string::npos);
  EXPECT_NE(table.find("StochasticTraversal"), std::string::npos);
  EXPECT_NE(table.find("GLOBAL"), std::string::npos);
}

TEST_F(ProtocolTest, MultiClientMergesAllTransactions) {
  WorkloadParameters w = SmallWorkload();
  w.client_count = 4;
  w.cold_transactions = 10;
  w.hot_transactions = 30;
  auto report = RunMultiClient(&db_, w);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->clients, 4u);
  EXPECT_EQ(report->merged.cold.global.transactions, 4u * 10u);
  EXPECT_EQ(report->merged.warm.global.transactions, 4u * 30u);
  EXPECT_GT(report->throughput_tps(), 0.0);
}

TEST_F(ProtocolTest, MultiClientSingleDegeneratesToProtocolRunner) {
  WorkloadParameters w = SmallWorkload();
  auto multi = RunMultiClient(&db_, w);
  ASSERT_TRUE(multi.ok());
  EXPECT_EQ(multi->merged.cold.global.transactions, 40u);
}

TEST_F(ProtocolTest, ClientsDrawIndependentStreams) {
  // Two clients with the same params must not execute the identical
  // transaction sequence: their per-type counts should differ somewhere
  // over a long run (the type draw is the first RNG consumption).
  WorkloadParameters w = SmallWorkload();
  w.cold_transactions = 0;
  w.hot_transactions = 500;
  PhaseMetrics a, b;
  {
    ProtocolRunner r0(&db_, w, /*client_id=*/0);
    ASSERT_TRUE(r0.RunPhase(500, &a).ok());
    ProtocolRunner r1(&db_, w, /*client_id=*/1);
    ASSERT_TRUE(r1.RunPhase(500, &b).ok());
  }
  bool any_difference = false;
  for (int t = 0; t < kNumTransactionTypes; ++t) {
    if (a.per_type[static_cast<size_t>(t)].transactions !=
        b.per_type[static_cast<size_t>(t)].transactions) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace ocb
