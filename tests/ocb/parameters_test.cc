// Tests asserting the paper's Table 1 / Table 2 default values and
// parameter validation.

#include "ocb/parameters.h"

#include <gtest/gtest.h>

#include "ocb/presets.h"

namespace ocb {
namespace {

TEST(DatabaseParametersTest, Table1Defaults) {
  const DatabaseParameters p;
  EXPECT_EQ(p.num_classes, 20u);          // NC.
  EXPECT_EQ(p.max_nref, 10u);             // MAXNREF.
  EXPECT_EQ(p.base_size, 50u);            // BASESIZE (bytes).
  EXPECT_EQ(p.num_objects, 20000u);       // NO.
  EXPECT_EQ(p.num_ref_types, 4u);         // NREFT.
  EXPECT_EQ(p.inf_class, 0);              // INFCLASS (0-based).
  EXPECT_EQ(p.EffectiveSupClass(), 19);   // SUPCLASS = NC.
  EXPECT_EQ(p.inf_ref, 0);                // INFREF.
  EXPECT_EQ(p.sup_ref, -1);               // SUPREF = NO (extent end).
  EXPECT_EQ(p.dist1_ref_types.kind, DistributionKind::kUniform);
  EXPECT_EQ(p.dist2_class_refs.kind, DistributionKind::kUniform);
  EXPECT_EQ(p.dist3_objects_in_classes.kind, DistributionKind::kUniform);
  EXPECT_EQ(p.dist4_object_refs.kind, DistributionKind::kUniform);
  EXPECT_TRUE(p.Validate().ok());
}

TEST(WorkloadParametersTest, Table2Defaults) {
  const WorkloadParameters p;
  EXPECT_EQ(p.set_depth, 3u);             // SETDEPTH.
  EXPECT_EQ(p.simple_depth, 3u);          // SIMDEPTH.
  EXPECT_EQ(p.hierarchy_depth, 5u);       // HIEDEPTH.
  EXPECT_EQ(p.stochastic_depth, 50u);     // STODEPTH.
  EXPECT_EQ(p.cold_transactions, 1000u);  // COLDN.
  EXPECT_EQ(p.hot_transactions, 10000u);  // HOTN.
  EXPECT_EQ(p.think_nanos, 0u);           // THINK.
  EXPECT_DOUBLE_EQ(p.p_set, 0.25);        // PSET.
  EXPECT_DOUBLE_EQ(p.p_simple, 0.25);     // PSIMPLE.
  EXPECT_DOUBLE_EQ(p.p_hierarchy, 0.25);  // PHIER.
  EXPECT_DOUBLE_EQ(p.p_stochastic, 0.25); // PSTOCH.
  EXPECT_EQ(p.dist5_roots.kind, DistributionKind::kUniform);  // RAND5.
  EXPECT_EQ(p.client_count, 1u);          // CLIENTN.
  EXPECT_TRUE(p.Validate().ok());
}

TEST(DatabaseParametersTest, ValidationCatchesBadValues) {
  DatabaseParameters p;
  p.num_classes = 0;
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
  p = DatabaseParameters{};
  p.num_objects = 0;
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
  p = DatabaseParameters{};
  p.num_ref_types = 0;
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
  p = DatabaseParameters{};
  p.sup_class = 100;  // >= NC.
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
  p = DatabaseParameters{};
  p.inf_class = 10;
  p.sup_class = 5;  // Inverted interval.
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
  p = DatabaseParameters{};
  p.per_class_max_nref = {1, 2, 3};  // Wrong arity.
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
}

TEST(DatabaseParametersTest, PerClassOverrides) {
  DatabaseParameters p;
  p.num_classes = 3;
  p.per_class_max_nref = {1, 2, 3};
  p.per_class_base_size = {10, 20, 30};
  EXPECT_EQ(p.MaxNrefFor(0), 1u);
  EXPECT_EQ(p.MaxNrefFor(2), 3u);
  EXPECT_EQ(p.BaseSizeFor(1), 20u);
  EXPECT_TRUE(p.Validate().ok());
}

TEST(WorkloadParametersTest, ProbabilitiesMustSumToOne) {
  WorkloadParameters p;
  p.p_set = 0.5;
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
  p = WorkloadParameters{};
  p.p_set = 1.0;
  p.p_simple = 0.0;
  p.p_hierarchy = 0.0;
  p.p_stochastic = 0.0;
  EXPECT_TRUE(p.Validate().ok());
  p.p_set = 1.5;
  p.p_simple = -0.5;
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
}

TEST(WorkloadParametersTest, ClientCountAndReverseValidation) {
  WorkloadParameters p;
  p.client_count = 0;
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
  p = WorkloadParameters{};
  p.p_reverse = 1.5;
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
}

TEST(ParameterTablesTest, RenderMentionsEveryName) {
  const std::string t1 = DatabaseParameters{}.ToTableString();
  for (const char* name : {"NC", "MAXNREF", "BASESIZE", "NO", "NREFT",
                           "INFCLASS", "SUPCLASS", "INFREF", "SUPREF",
                           "DIST1", "DIST2", "DIST3", "DIST4"}) {
    EXPECT_NE(t1.find(name), std::string::npos) << name;
  }
  const std::string t2 = WorkloadParameters{}.ToTableString();
  for (const char* name :
       {"SETDEPTH", "SIMDEPTH", "HIEDEPTH", "STODEPTH", "COLDN", "HOTN",
        "THINK", "PSET", "PSIMPLE", "PHIER", "PSTOCH", "RAND5", "CLIENTN"}) {
    EXPECT_NE(t2.find(name), std::string::npos) << name;
  }
}

TEST(TransactionTypeTest, Names) {
  EXPECT_STREQ(TransactionTypeToString(TransactionType::kSetOriented),
               "SetOriented");
  EXPECT_STREQ(TransactionTypeToString(TransactionType::kStochasticTraversal),
               "StochasticTraversal");
}

TEST(PresetsTest, Table3ClubApproximation) {
  const OcbPreset preset = presets::DstcClubApprox();
  const DatabaseParameters& db = preset.database;
  EXPECT_EQ(db.num_classes, 2u);       // Table 3: NC = 2.
  EXPECT_EQ(db.max_nref, 3u);          // MAXNREF = 3.
  EXPECT_EQ(db.base_size, 50u);        // BASESIZE = 50.
  EXPECT_EQ(db.num_objects, 20000u);   // NO = 20000.
  EXPECT_EQ(db.num_ref_types, 3u);     // NREFT = 3.
  EXPECT_EQ(db.dist1_ref_types.kind, DistributionKind::kConstant);
  EXPECT_EQ(db.dist2_class_refs.kind, DistributionKind::kConstant);
  EXPECT_EQ(db.dist3_objects_in_classes.kind, DistributionKind::kConstant);
  EXPECT_EQ(db.dist4_object_refs.kind, DistributionKind::kSpecialRefZone);
  EXPECT_TRUE(db.Validate().ok());
  // Workload: pure OO1 traversal at depth 7.
  EXPECT_DOUBLE_EQ(preset.workload.p_simple, 1.0);
  EXPECT_EQ(preset.workload.simple_depth, 7u);
  EXPECT_TRUE(preset.workload.Validate().ok());
}

TEST(PresetsTest, AllPresetsValidate) {
  for (const OcbPreset& preset :
       {presets::Default(), presets::DstcClubApprox(), presets::OO1Approx(),
        presets::HyperModelApprox(), presets::OO7SmallApprox()}) {
    EXPECT_TRUE(preset.database.Validate().ok()) << preset.name;
    EXPECT_TRUE(preset.workload.Validate().ok()) << preset.name;
  }
}

}  // namespace
}  // namespace ocb
