// Tests for the root_pool_size stereotypy parameter and root replacement
// under delete churn.

#include <gtest/gtest.h>

#include <set>

#include "ocb/generator.h"
#include "ocb/protocol.h"

namespace ocb {
namespace {

StorageOptions TestOptions() {
  StorageOptions opts;
  opts.buffer_pool_pages = 64;
  return opts;
}

DatabaseParameters SmallDb() {
  DatabaseParameters p;
  p.num_classes = 3;
  p.num_objects = 400;
  p.max_nref = 3;
  p.seed = 7;
  return p;
}

class RootPoolTest : public ::testing::Test {
 protected:
  RootPoolTest() : db_(TestOptions()) {
    EXPECT_TRUE(GenerateDatabase(SmallDb(), &db_).ok());
  }
  Database db_;
};

/// Observer recording every transaction's root (first access after begin).
class RootRecorder : public AccessObserver {
 public:
  void OnTransactionBegin() override { expecting_root_ = true; }
  void OnObjectAccess(Oid oid) override {
    if (expecting_root_) {
      roots.insert(oid);
      expecting_root_ = false;
    }
  }
  std::set<Oid> roots;

 private:
  bool expecting_root_ = false;
};

TEST_F(RootPoolTest, PoolLimitsDistinctRoots) {
  WorkloadParameters w;
  w.root_pool_size = 5;
  w.cold_transactions = 0;
  w.hot_transactions = 300;
  w.p_set = 1.0;
  w.p_simple = w.p_hierarchy = w.p_stochastic = 0.0;
  w.set_depth = 0;  // Pure root lookups: the root is the only access.
  w.seed = 11;

  RootRecorder recorder;
  db_.SetObserver(&recorder);
  ProtocolRunner runner(&db_, w);
  PhaseMetrics phase;
  ASSERT_TRUE(runner.RunPhase(300, &phase).ok());
  db_.SetObserver(nullptr);
  EXPECT_LE(recorder.roots.size(), 5u);
  EXPECT_GE(recorder.roots.size(), 2u);  // The pool is actually used.
}

TEST_F(RootPoolTest, ZeroMeansAllObjects) {
  WorkloadParameters w;
  w.root_pool_size = 0;
  w.cold_transactions = 0;
  w.hot_transactions = 400;
  w.p_set = 1.0;
  w.p_simple = w.p_hierarchy = w.p_stochastic = 0.0;
  w.set_depth = 0;
  w.seed = 13;

  RootRecorder recorder;
  db_.SetObserver(&recorder);
  ProtocolRunner runner(&db_, w);
  PhaseMetrics phase;
  ASSERT_TRUE(runner.RunPhase(400, &phase).ok());
  db_.SetObserver(nullptr);
  // 400 uniform draws over 400 objects: far more than 5 distinct roots.
  EXPECT_GT(recorder.roots.size(), 100u);
}

TEST_F(RootPoolTest, PoolIsSeedDeterministic) {
  WorkloadParameters w;
  w.root_pool_size = 5;
  w.cold_transactions = 0;
  w.hot_transactions = 100;
  w.p_set = 1.0;
  w.p_simple = w.p_hierarchy = w.p_stochastic = 0.0;
  w.set_depth = 0;
  w.seed = 17;

  auto collect = [&]() {
    RootRecorder recorder;
    db_.SetObserver(&recorder);
    ProtocolRunner runner(&db_, w);
    PhaseMetrics phase;
    EXPECT_TRUE(runner.RunPhase(100, &phase).ok());
    db_.SetObserver(nullptr);
    return recorder.roots;
  };
  EXPECT_EQ(collect(), collect());
}

TEST_F(RootPoolTest, DeletedRootsAreReplaced) {
  // A workload of pure deletes with a tiny pool keeps making progress:
  // every delete consumes its root and the pool adopts a live object.
  WorkloadParameters w;
  w.root_pool_size = 3;
  w.cold_transactions = 0;
  w.hot_transactions = 0;
  w.p_set = 0.0;
  w.p_simple = w.p_hierarchy = w.p_stochastic = 0.0;
  w.p_delete = 1.0;
  w.seed = 19;

  const uint64_t before = db_.object_count();
  ProtocolRunner runner(&db_, w);
  PhaseMetrics phase;
  ASSERT_TRUE(runner.RunPhase(50, &phase).ok());
  // At least ~47 deletes succeeded (first draws may repeat a pool slot
  // already consumed before replacement, costing a skipped iteration).
  EXPECT_LE(db_.object_count(), before - 40);
  EXPECT_GT(db_.object_count(), 0u);
}

}  // namespace
}  // namespace ocb
