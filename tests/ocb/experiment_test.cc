// End-to-end tests of the before/after clustering experiment harness —
// miniature versions of the paper's Table 4 / Table 5 runs.

#include "ocb/experiment.h"

#include <gtest/gtest.h>

#include "clustering/dstc.h"

namespace ocb {
namespace {

/// A miniature CluB-style configuration: small database, tiny buffer pool
/// (so locality matters), pure depth-first traversals. Geometry matters:
/// with 1 KB pages (~8 objects each) and a ±60-object reference zone, a
/// creation-order layout scatters each traversal over many pages, leaving
/// clustering real headroom — the same DB-vs-cache regime as the paper's
/// 15 MB database against 8 MB of memory.
ExperimentConfig MiniClubConfig() {
  ExperimentConfig config;
  config.preset = presets::DstcClubApprox(/*ref_zone=*/60);
  config.preset.database.num_objects = 1500;
  config.preset.database.seed = 11;
  config.preset.workload.cold_transactions = 60;
  config.preset.workload.hot_transactions = 150;
  config.preset.workload.simple_depth = 4;
  config.preset.workload.seed = 13;
  config.storage.page_size = 1024;
  config.storage.buffer_pool_pages = 16;  // DB >> cache.
  return config;
}

DstcOptions FastDstc() {
  DstcOptions options;
  options.observation_period_transactions = 50;
  options.selection_threshold = 1.0;
  options.unit_link_threshold = 1.0;
  return options;
}

TEST(ExperimentTest, DstcImprovesStereotypedTraversals) {
  Dstc dstc(FastDstc());
  auto result = RunBeforeAfterExperiment(MiniClubConfig(), &dstc);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->policy_name, "DSTC");
  EXPECT_GT(result->ios_before(), 0.0);
  EXPECT_GT(result->ios_after(), 0.0);
  // The paper's headline shape: clustering wins on CluB-style workloads.
  EXPECT_GT(result->gain_factor(), 1.2)
      << "before=" << result->ios_before()
      << " after=" << result->ios_after();
  EXPECT_GT(result->clustering_overhead_io, 0u);
  EXPECT_GE(result->policy_stats.reorganizations, 1u);
}

TEST(ExperimentTest, NoClusteringGainIsNeutral) {
  NoClustering none;
  auto result = RunBeforeAfterExperiment(MiniClubConfig(), &none);
  ASSERT_TRUE(result.ok());
  // Identical layout, identical deterministic workload: gain == 1.
  EXPECT_NEAR(result->gain_factor(), 1.0, 0.05);
  EXPECT_EQ(result->clustering_overhead_io, 0u);
}

TEST(ExperimentTest, GenerationReportIsFilled) {
  Dstc dstc(FastDstc());
  auto result = RunBeforeAfterExperiment(MiniClubConfig(), &dstc);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->generation.objects_created, 1500u);
  EXPECT_GT(result->generation.data_pages, 0u);
  EXPECT_GT(result->generation.generation_ios, 0u);
}

TEST(ExperimentTest, ReusableDatabaseVariant) {
  ExperimentConfig config = MiniClubConfig();
  Database db(config.storage);
  ASSERT_TRUE(GenerateDatabase(config.preset.database, &db).ok());

  Dstc dstc(FastDstc());
  auto result =
      RunBeforeAfterOnDatabase(&db, config.preset.workload, &dstc);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->ios_before(), 0.0);
  // Observer is detached afterwards.
  EXPECT_GE(result->gain_factor(), 1.0);
}

TEST(ExperimentTest, InvalidStorageRejected) {
  ExperimentConfig config = MiniClubConfig();
  config.storage.page_size = 100;  // Not a power of two.
  Dstc dstc;
  EXPECT_TRUE(RunBeforeAfterExperiment(config, &dstc)
                  .status()
                  .IsInvalidArgument());
}

TEST(ExperimentTest, DiversifiedWorkloadGainIsSmaller) {
  // Reproduces the Table 4 vs Table 5 *shape* in miniature: the same
  // database under a stereotyped traversal workload clusters better than
  // under the diversified four-type workload.
  ExperimentConfig club = MiniClubConfig();

  ExperimentConfig diversified = MiniClubConfig();
  diversified.preset.workload.p_set = 0.25;
  diversified.preset.workload.p_simple = 0.25;
  diversified.preset.workload.p_hierarchy = 0.25;
  diversified.preset.workload.p_stochastic = 0.25;
  diversified.preset.workload.set_depth = 2;
  diversified.preset.workload.hierarchy_depth = 3;
  diversified.preset.workload.stochastic_depth = 10;

  Dstc dstc_club(FastDstc());
  auto club_result = RunBeforeAfterExperiment(club, &dstc_club);
  ASSERT_TRUE(club_result.ok());

  Dstc dstc_div(FastDstc());
  auto div_result = RunBeforeAfterExperiment(diversified, &dstc_div);
  ASSERT_TRUE(div_result.ok());

  EXPECT_GT(club_result->gain_factor(), div_result->gain_factor() * 0.9)
      << "club gain=" << club_result->gain_factor()
      << " diversified gain=" << div_result->gain_factor();
}

}  // namespace
}  // namespace ocb
