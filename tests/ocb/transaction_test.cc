// Tests for the four OCB transaction types on hand-built object graphs
// with known traversal counts.

#include "ocb/transaction.h"

#include <gtest/gtest.h>

namespace ocb {
namespace {

StorageOptions TestOptions() {
  StorageOptions opts;
  opts.page_size = 4096;
  opts.buffer_pool_pages = 64;
  return opts;
}

// One class, maxnref slots all typed `types[i]`, targeting class 0.
Schema GraphSchema(std::vector<RefTypeId> slot_types) {
  Schema schema;
  schema.SetRefTypes(Schema::DefaultTraits(3));
  ClassDescriptor cls;
  cls.id = 0;
  cls.maxnref = static_cast<uint32_t>(slot_types.size());
  cls.basesize = 20;
  cls.instance_size = 20;
  cls.tref = std::move(slot_types);
  cls.cref.assign(cls.tref.size(), 0);
  Schema out = std::move(schema);
  EXPECT_TRUE(out.AddClass(std::move(cls)).ok());
  return out;
}

class TransactionTest : public ::testing::Test {
 protected:
  TransactionTest() : db_(TestOptions()) {}

  // Builds a complete binary tree of `levels` levels below the root, both
  // child slots typed 2 (association). Returns the root.
  Oid BuildBinaryTree(uint32_t levels) {
    db_.SetSchema(GraphSchema({2, 2}));
    auto build = [&](auto&& self, uint32_t remaining) -> Oid {
      auto oid = db_.CreateObject(0);
      EXPECT_TRUE(oid.ok());
      if (remaining > 0) {
        const Oid left = self(self, remaining - 1);
        const Oid right = self(self, remaining - 1);
        EXPECT_TRUE(db_.SetReference(*oid, 0, left).ok());
        EXPECT_TRUE(db_.SetReference(*oid, 1, right).ok());
      }
      return *oid;
    };
    return build(build, levels);
  }

  Database db_;
  WorkloadParameters params_;
  LewisPayneRng rng_{12345};
};

TEST_F(TransactionTest, SetOrientedCountsBfsLevels) {
  const Oid root = BuildBinaryTree(4);
  params_.set_depth = 3;
  TransactionExecutor executor(&db_, params_);
  auto result = executor.Execute(TransactionType::kSetOriented, root,
                                 /*reversed=*/false, &rng_);
  ASSERT_TRUE(result.ok());
  // Root + 2 + 4 + 8 = 15 objects.
  EXPECT_EQ(result->objects_accessed, 15u);
  EXPECT_EQ(result->type, TransactionType::kSetOriented);
}

TEST_F(TransactionTest, SimpleTraversalCountsDfs) {
  const Oid root = BuildBinaryTree(4);
  params_.simple_depth = 2;
  TransactionExecutor executor(&db_, params_);
  auto result = executor.Execute(TransactionType::kSimpleTraversal, root,
                                 false, &rng_);
  ASSERT_TRUE(result.ok());
  // Depth-first to depth 2 covers the same node set as BFS: 1 + 2 + 4.
  EXPECT_EQ(result->objects_accessed, 7u);
}

TEST_F(TransactionTest, DepthZeroTouchesOnlyRoot) {
  const Oid root = BuildBinaryTree(2);
  params_.set_depth = 0;
  params_.simple_depth = 0;
  TransactionExecutor executor(&db_, params_);
  for (auto type : {TransactionType::kSetOriented,
                    TransactionType::kSimpleTraversal}) {
    auto result = executor.Execute(type, root, false, &rng_);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->objects_accessed, 1u);
  }
}

TEST_F(TransactionTest, HierarchyTraversalFollowsOnlyItsType) {
  // Slot 0 typed 1 (composition), slot 1 typed 2 (association): a chain
  // through slot 0 and noise through slot 1.
  db_.SetSchema(GraphSchema({1, 2}));
  std::vector<Oid> chain;
  for (int i = 0; i < 6; ++i) {
    auto oid = db_.CreateObject(0);
    ASSERT_TRUE(oid.ok());
    chain.push_back(*oid);
  }
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(db_.SetReference(chain[static_cast<size_t>(i)], 0,
                                 chain[static_cast<size_t>(i) + 1])
                    .ok());
    // Association edges back to the root would explode the count if
    // followed.
    ASSERT_TRUE(db_.SetReference(chain[static_cast<size_t>(i)], 1,
                                 chain[0])
                    .ok());
  }
  params_.hierarchy_depth = 10;
  params_.hierarchy_ref_type = 1;
  TransactionExecutor executor(&db_, params_);
  auto result = executor.Execute(TransactionType::kHierarchyTraversal,
                                 chain[0], false, &rng_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->objects_accessed, 6u);  // The chain, nothing else.
}

TEST_F(TransactionTest, StochasticNeverExceedsDepth) {
  const Oid root = BuildBinaryTree(6);
  params_.stochastic_depth = 4;
  TransactionExecutor executor(&db_, params_);
  for (int i = 0; i < 50; ++i) {
    auto result = executor.Execute(TransactionType::kStochasticTraversal,
                                   root, false, &rng_);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->objects_accessed, 1u + 4u);
    EXPECT_GE(result->objects_accessed, 1u);
  }
}

TEST_F(TransactionTest, StochasticFollowsGeometricLaw) {
  // A node with two self-loop refs: slot 0 should be chosen about twice as
  // often as slot 1 (p = 1/2 vs 1/4), estimated by wiring slot targets to
  // distinguishable nodes.
  db_.SetSchema(GraphSchema({2, 2}));
  auto hub = db_.CreateObject(0);
  auto a = db_.CreateObject(0);
  auto b = db_.CreateObject(0);
  ASSERT_TRUE(hub.ok() && a.ok() && b.ok());
  ASSERT_TRUE(db_.SetReference(*hub, 0, *a).ok());
  ASSERT_TRUE(db_.SetReference(*hub, 1, *b).ok());

  // Count first-step choices through the observer.
  class FirstStepCounter : public AccessObserver {
   public:
    void OnLinkCross(Oid, Oid to, RefTypeId, bool) override {
      if (!first_recorded) {
        ++counts[to];
        first_recorded = true;
      }
    }
    void OnTransactionBegin() override { first_recorded = false; }
    std::map<Oid, int> counts;
    bool first_recorded = false;
  } counter;
  db_.SetObserver(&counter);

  params_.stochastic_depth = 1;
  TransactionExecutor executor(&db_, params_);
  constexpr int kRuns = 4000;
  for (int i = 0; i < kRuns; ++i) {
    db_.BeginTransaction();
    ASSERT_TRUE(executor
                    .Execute(TransactionType::kStochasticTraversal, *hub,
                             false, &rng_)
                    .ok());
  }
  db_.SetObserver(nullptr);
  // P(slot0) = 1/2, P(slot1) = 1/4, P(stop) = 1/4.
  EXPECT_NEAR(static_cast<double>(counter.counts[*a]) / kRuns, 0.5, 0.04);
  EXPECT_NEAR(static_cast<double>(counter.counts[*b]) / kRuns, 0.25, 0.04);
}

TEST_F(TransactionTest, ReversedTraversalAscendsBackrefs) {
  const Oid root = BuildBinaryTree(3);
  // Find a leaf: follow slot 0 three times.
  Oid leaf = root;
  for (int i = 0; i < 3; ++i) {
    auto obj = db_.PeekObject(leaf);
    ASSERT_TRUE(obj.ok());
    leaf = obj->orefs[0];
  }
  params_.simple_depth = 3;
  TransactionExecutor executor(&db_, params_);
  auto result = executor.Execute(TransactionType::kSimpleTraversal, leaf,
                                 /*reversed=*/true, &rng_);
  ASSERT_TRUE(result.ok());
  // Tree parents are unique: leaf + 3 ancestors.
  EXPECT_EQ(result->objects_accessed, 4u);
  EXPECT_TRUE(result->reversed);
}

TEST_F(TransactionTest, MissingRootFails) {
  BuildBinaryTree(1);
  TransactionExecutor executor(&db_, params_);
  auto result = executor.Execute(TransactionType::kSetOriented, 99999,
                                 false, &rng_);
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST_F(TransactionTest, DrawTypeMatchesProbabilities) {
  BuildBinaryTree(1);
  params_.p_set = 0.5;
  params_.p_simple = 0.5;
  params_.p_hierarchy = 0.0;
  params_.p_stochastic = 0.0;
  TransactionExecutor executor(&db_, params_);
  int set_count = 0;
  constexpr int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i) {
    const TransactionType t = executor.DrawType(&rng_);
    ASSERT_TRUE(t == TransactionType::kSetOriented ||
                t == TransactionType::kSimpleTraversal);
    if (t == TransactionType::kSetOriented) ++set_count;
  }
  EXPECT_NEAR(static_cast<double>(set_count) / kDraws, 0.5, 0.03);
}

TEST_F(TransactionTest, IoReadsReflectColdAccess) {
  const Oid root = BuildBinaryTree(5);
  ASSERT_TRUE(db_.ColdRestart().ok());
  params_.set_depth = 5;
  TransactionExecutor executor(&db_, params_);
  ScopedIoScope scope(db_.disk(), IoScope::kTransaction);
  auto result = executor.Execute(TransactionType::kSetOriented, root,
                                 false, &rng_);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->io_reads, 0u);
  EXPECT_GT(result->sim_nanos, 0u);
}

}  // namespace
}  // namespace ocb
