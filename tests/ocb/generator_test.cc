// Tests for the Fig. 2 database generation algorithm.

#include "ocb/generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>

namespace ocb {
namespace {

StorageOptions TestOptions() {
  StorageOptions opts;
  opts.page_size = 4096;
  opts.buffer_pool_pages = 64;
  return opts;
}

DatabaseParameters SmallParams(uint64_t objects = 500,
                               uint32_t classes = 5) {
  DatabaseParameters p;
  p.num_classes = classes;
  p.num_objects = objects;
  p.max_nref = 4;
  p.base_size = 30;
  p.seed = 7;
  return p;
}

TEST(GeneratorTest, CreatesRequestedCounts) {
  Database db(TestOptions());
  auto report = GenerateDatabase(SmallParams(), &db);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->classes_created, 5u);
  EXPECT_EQ(report->objects_created, 500u);
  EXPECT_EQ(db.object_count(), 500u);
  EXPECT_EQ(db.schema().class_count(), 5u);
  EXPECT_GT(report->data_pages, 0u);
  EXPECT_GT(report->database_bytes, 0u);
  // Every slot of every object was considered: bound + nil = NO * MAXNREF.
  EXPECT_EQ(report->references_bound + report->nil_references,
            500u * 4u);
}

TEST(GeneratorTest, ExtentsPartitionTheObjects) {
  Database db(TestOptions());
  ASSERT_TRUE(GenerateDatabase(SmallParams(), &db).ok());
  uint64_t total = 0;
  for (ClassId c = 0; c < db.schema().class_count(); ++c) {
    total += db.schema().GetClass(c).iterator.size();
  }
  EXPECT_EQ(total, 500u);
}

TEST(GeneratorTest, RefusesNonEmptyDatabase) {
  Database db(TestOptions());
  ASSERT_TRUE(GenerateDatabase(SmallParams(), &db).ok());
  EXPECT_TRUE(GenerateDatabase(SmallParams(), &db)
                  .status()
                  .IsInvalidArgument());
}

TEST(GeneratorTest, RejectsInvalidParameters) {
  Database db(TestOptions());
  DatabaseParameters p = SmallParams();
  p.num_classes = 0;
  EXPECT_TRUE(GenerateDatabase(p, &db).status().IsInvalidArgument());
}

TEST(GeneratorTest, InheritanceGraphIsAcyclicAndSized) {
  Database db(TestOptions());
  ASSERT_TRUE(GenerateDatabase(SmallParams(), &db).ok());
  EXPECT_FALSE(db.schema().HasForbiddenCycle());
  for (ClassId c = 0; c < db.schema().class_count(); ++c) {
    const ClassDescriptor& cls = db.schema().GetClass(c);
    EXPECT_GE(cls.instance_size, cls.basesize);
  }
}

TEST(GeneratorTest, ReferencesTargetTheDeclaredClass) {
  Database db(TestOptions());
  ASSERT_TRUE(GenerateDatabase(SmallParams(), &db).ok());
  const Schema& schema = db.schema();
  for (ClassId c = 0; c < schema.class_count(); ++c) {
    const ClassDescriptor& cls = schema.GetClass(c);
    for (Oid oid : cls.iterator) {
      auto obj = db.PeekObject(oid);
      ASSERT_TRUE(obj.ok());
      for (uint32_t k = 0; k < cls.maxnref; ++k) {
        const Oid target = obj->orefs[k];
        if (target == kInvalidOid) continue;
        auto target_obj = db.PeekObject(target);
        ASSERT_TRUE(target_obj.ok());
        EXPECT_EQ(target_obj->class_id, cls.cref[k]);
      }
    }
  }
}

TEST(GeneratorTest, BackRefsAreSymmetric) {
  Database db(TestOptions());
  ASSERT_TRUE(GenerateDatabase(SmallParams(), &db).ok());
  // Forward edge multiset == reverse edge multiset.
  std::unordered_map<uint64_t, int> balance;
  auto key = [](Oid a, Oid b) { return a * 1000003ULL + b; };
  for (Oid oid : db.object_store()->LiveOids()) {
    auto obj = db.PeekObject(oid);
    ASSERT_TRUE(obj.ok());
    for (Oid target : obj->orefs) {
      if (target != kInvalidOid) ++balance[key(oid, target)];
    }
    for (Oid referer : obj->backrefs) {
      --balance[key(referer, oid)];
    }
  }
  for (const auto& [k, v] : balance) {
    ASSERT_EQ(v, 0) << "unbalanced edge key " << k;
  }
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  Database db1(TestOptions()), db2(TestOptions());
  ASSERT_TRUE(GenerateDatabase(SmallParams(), &db1).ok());
  ASSERT_TRUE(GenerateDatabase(SmallParams(), &db2).ok());
  ASSERT_EQ(db1.object_count(), db2.object_count());
  for (Oid oid : db1.object_store()->LiveOids()) {
    auto a = db1.PeekObject(oid);
    auto b = db2.PeekObject(oid);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->class_id, b->class_id);
    ASSERT_EQ(a->orefs, b->orefs);
  }
}

TEST(GeneratorTest, DifferentSeedsProduceDifferentGraphs) {
  Database db1(TestOptions()), db2(TestOptions());
  DatabaseParameters p2 = SmallParams();
  p2.seed = 999;
  ASSERT_TRUE(GenerateDatabase(SmallParams(), &db1).ok());
  ASSERT_TRUE(GenerateDatabase(p2, &db2).ok());
  int differing = 0;
  for (Oid oid : db1.object_store()->LiveOids()) {
    auto a = db1.PeekObject(oid);
    auto b = db2.PeekObject(oid);
    if (a.ok() && b.ok() &&
        (a->class_id != b->class_id || a->orefs != b->orefs)) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 100);
}

TEST(GeneratorTest, FixedTrefAndCrefAreHonored) {
  Database db(TestOptions());
  DatabaseParameters p;
  p.num_classes = 2;
  p.num_objects = 50;
  p.max_nref = 2;
  p.num_ref_types = 3;
  p.fixed_tref = {{2, 2}, {2, 2}};
  p.fixed_cref = {{1, -1}, {0, 0}};  // -1 = NIL.
  auto report = GenerateDatabase(p, &db);
  ASSERT_TRUE(report.ok());
  const Schema& schema = db.schema();
  EXPECT_EQ(schema.GetClass(0).cref[0], 1u);
  EXPECT_EQ(schema.GetClass(0).cref[1], kNullClass);
  EXPECT_EQ(schema.GetClass(1).cref[0], 0u);
  // NIL schema slots yield NIL object refs.
  for (Oid oid : schema.GetClass(0).iterator) {
    auto obj = db.PeekObject(oid);
    ASSERT_TRUE(obj.ok());
    EXPECT_EQ(obj->orefs[1], kInvalidOid);
  }
}

TEST(GeneratorTest, ConstantDistributionsConcentrateClassMembership) {
  Database db(TestOptions());
  DatabaseParameters p = SmallParams();
  p.dist3_objects_in_classes = DistributionSpec::Constant(2);
  ASSERT_TRUE(GenerateDatabase(p, &db).ok());
  EXPECT_EQ(db.schema().GetClass(2).iterator.size(), 500u);
  EXPECT_TRUE(db.schema().GetClass(0).iterator.empty());
}

TEST(GeneratorTest, SupRefBoundsTargetIndices) {
  Database db(TestOptions());
  DatabaseParameters p = SmallParams(/*objects=*/300, /*classes=*/1);
  p.sup_ref = 9;  // Only the first ten extent members may be referenced.
  ASSERT_TRUE(GenerateDatabase(p, &db).ok());
  const auto& extent = db.schema().GetClass(0).iterator;
  std::vector<Oid> allowed(extent.begin(), extent.begin() + 10);
  for (Oid oid : extent) {
    auto obj = db.PeekObject(oid);
    ASSERT_TRUE(obj.ok());
    for (Oid target : obj->orefs) {
      if (target == kInvalidOid) continue;
      EXPECT_NE(std::find(allowed.begin(), allowed.end(), target),
                allowed.end());
    }
  }
}

// Property over seeds: generation invariants hold for any seed.
class GeneratorSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratorSeedSweep, InvariantsHold) {
  Database db(TestOptions());
  DatabaseParameters p = SmallParams(/*objects=*/200, /*classes=*/8);
  p.seed = GetParam();
  auto report = GenerateDatabase(p, &db);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(db.object_count(), 200u);
  EXPECT_FALSE(db.schema().HasForbiddenCycle());
  EXPECT_TRUE(db.schema().Validate().ok());
  EXPECT_EQ(report->references_bound + report->nil_references,
            200u * 4u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeedSweep,
                         ::testing::Values(1u, 17u, 1998u, 31337u));

}  // namespace
}  // namespace ocb
