// Group-commit tests: deterministic leader–follower batch formation at
// the CommitPipeline level, semantic equivalence of grouped commits on a
// Database (every member gets its own consecutive timestamp; snapshots
// see whole transactions), concurrent-session durability, and 2PC batch
// atomicity under an abort injected mid-batch on the sharded engine.

#include "concurrency/commit_pipeline.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "engine/session.h"
#include "oodb/database.h"
#include "sharding/sharded_database.h"

namespace ocb {
namespace {

StorageOptions TestOptions() {
  StorageOptions opts;
  opts.page_size = 1024;
  opts.buffer_pool_pages = 32;
  return opts;
}

Schema TwoClassSchema() {
  Schema schema;
  schema.SetRefTypes(Schema::DefaultTraits(3));
  ClassDescriptor a;
  a.id = 0;
  a.maxnref = 3;
  a.basesize = 40;
  a.instance_size = 40;
  a.tref = {2, 2, 2};
  a.cref = {1, 1, 0};
  ClassDescriptor b;
  b.id = 1;
  b.maxnref = 2;
  b.basesize = 20;
  b.instance_size = 20;
  b.tref = {2, 2};
  b.cref = {0, 0};
  Schema out = std::move(schema);
  EXPECT_TRUE(out.AddClass(std::move(a)).ok());
  EXPECT_TRUE(out.AddClass(std::move(b)).ok());
  return out;
}

TEST(CommitPipelineTest, FollowersAccumulateIntoOneBatch) {
  // Deterministic batch formation: the first submitter leads a batch of
  // one and parks inside the batch function; two followers enqueue
  // meanwhile; on release, ONE follower leads a batch containing both.
  std::mutex mu;
  std::condition_variable cv;
  bool hold_first = true;
  int batches_seen = 0;
  std::vector<size_t> batch_sizes;

  CommitPipeline pipeline(
      [&](const std::vector<CommitPipeline::Request*>& batch) {
        {
          std::unique_lock<std::mutex> lock(mu);
          ++batches_seen;
          batch_sizes.push_back(batch.size());
          if (batches_seen == 1) {
            cv.wait(lock, [&]() { return !hold_first; });
          }
        }
        for (CommitPipeline::Request* r : batch) r->status = Status::OK();
      });

  int h1 = 1, h2 = 2, h3 = 3;
  std::thread leader([&]() { EXPECT_TRUE(pipeline.Submit(&h1).ok()); });
  // Wait until the leader is inside the batch function.
  for (int i = 0; i < 2000 && pipeline.stats().batches == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_EQ(batches_seen, 1);
  }
  std::thread f1([&]() { EXPECT_TRUE(pipeline.Submit(&h2).ok()); });
  std::thread f2([&]() { EXPECT_TRUE(pipeline.Submit(&h3).ok()); });
  // Let both followers enqueue, then release the leader.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  {
    std::lock_guard<std::mutex> lock(mu);
    hold_first = false;
  }
  cv.notify_all();
  leader.join();
  f1.join();
  f2.join();

  const GroupCommitStats stats = pipeline.stats();
  EXPECT_EQ(stats.commits, 3u);
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_EQ(stats.max_batch_formed, 2u);
  EXPECT_EQ(stats.grouped_commits, 2u);
  ASSERT_EQ(batch_sizes.size(), 2u);
  EXPECT_EQ(batch_sizes[0], 1u);
  EXPECT_EQ(batch_sizes[1], 2u);
}

TEST(CommitPipelineTest, MaxBatchOneDegradesToPerTransactionCommits) {
  // Same choreography, but a batch cap of 1 forces three leader rounds.
  std::mutex mu;
  std::condition_variable cv;
  bool hold_first = true;
  int batches_seen = 0;

  CommitPipeline pipeline(
      [&](const std::vector<CommitPipeline::Request*>& batch) {
        {
          std::unique_lock<std::mutex> lock(mu);
          ++batches_seen;
          if (batches_seen == 1) {
            cv.wait(lock, [&]() { return !hold_first; });
          }
        }
        EXPECT_EQ(batch.size(), 1u);
        for (CommitPipeline::Request* r : batch) r->status = Status::OK();
      });
  pipeline.set_max_batch(1);

  int h1 = 1, h2 = 2, h3 = 3;
  std::thread leader([&]() { EXPECT_TRUE(pipeline.Submit(&h1).ok()); });
  for (int i = 0; i < 2000 && pipeline.stats().batches == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  std::thread f1([&]() { EXPECT_TRUE(pipeline.Submit(&h2).ok()); });
  std::thread f2([&]() { EXPECT_TRUE(pipeline.Submit(&h3).ok()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  {
    std::lock_guard<std::mutex> lock(mu);
    hold_first = false;
  }
  cv.notify_all();
  leader.join();
  f1.join();
  f2.join();

  const GroupCommitStats stats = pipeline.stats();
  EXPECT_EQ(stats.commits, 3u);
  EXPECT_EQ(stats.batches, 3u);
  EXPECT_EQ(stats.max_batch_formed, 1u);
  EXPECT_EQ(stats.grouped_commits, 0u);
}

TEST(GroupCommitTest, GroupedCommitsGetDistinctTimestampsAndCleanChains) {
  // Batch stamping must be indistinguishable from per-transaction
  // commits: each member its own timestamp, snapshots see whole
  // transactions, GC reclaims everything once views close.
  Database db(TestOptions());
  db.SetSchema(TwoClassSchema());
  const Oid source = *db.CreateObject(0);
  const Oid t1 = *db.CreateObject(1);
  const Oid t2 = *db.CreateObject(1);

  const CommitTs before = db.version_store()->latest();
  auto session = db.OpenSession();
  for (Oid to : {t1, t2, t1}) {
    auto txn = session.Begin();
    ASSERT_TRUE(txn.SetReference(source, 0, to).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  // Three writer commits → three distinct timestamps on the axis.
  EXPECT_EQ(db.version_store()->latest(), before + 3);
  EXPECT_GE(db.group_commit_stats().commits, 3u);

  // A new snapshot sees the final state; GC fully reclaims.
  TxnOptions ro;
  ro.read_only = true;
  auto reader = session.Begin(ro);
  EXPECT_EQ(reader.Get(source)->orefs[0], t1);
  ASSERT_TRUE(reader.Commit().ok());
  db.CollectVersionGarbage();
  EXPECT_EQ(db.version_store()->stats().live_versions, 0u);
}

TEST(GroupCommitTest, ConcurrentSessionCommitsAreAllDurable) {
  Database db(TestOptions());
  db.SetSchema(TwoClassSchema());
  constexpr int kThreads = 4;
  constexpr int kTxnsPerThread = 50;
  // One source object per thread: disjoint footprints, so every commit
  // succeeds — the contention is purely on the commit path, which is
  // exactly what the pipeline serializes.
  std::vector<Oid> sources;
  std::vector<Oid> targets;
  for (int t = 0; t < kThreads; ++t) {
    sources.push_back(*db.CreateObject(0));
    targets.push_back(*db.CreateObject(1));
  }

  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      auto session = db.OpenSession();
      for (int i = 0; i < kTxnsPerThread; ++i) {
        auto txn = session.Begin();
        const uint32_t slot = static_cast<uint32_t>(i % 3);
        if (!txn.SetReference(sources[static_cast<size_t>(t)], slot,
                              targets[static_cast<size_t>(t)])
                 .ok() ||
            !txn.Commit().ok()) {
          failed = true;
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_FALSE(failed);

  const GroupCommitStats stats = db.group_commit_stats();
  EXPECT_EQ(stats.commits,
            static_cast<uint64_t>(kThreads) * kTxnsPerThread);
  EXPECT_GE(stats.batches, 1u);
  // Every thread's final write survived.
  for (int t = 0; t < kThreads; ++t) {
    const auto obj = db.PeekObject(sources[static_cast<size_t>(t)]);
    ASSERT_TRUE(obj.ok());
    EXPECT_EQ(obj->orefs[(kTxnsPerThread - 1) % 3],
              targets[static_cast<size_t>(t)]);
  }
  EXPECT_EQ(db.lock_manager()->locked_object_count(), 0u);
}

TEST(GroupCommitTest, InjectedAbortMidBatchKillsOnlyThatMember) {
  // Two cross-shard transactions with disjoint footprints commit
  // concurrently through the grouped 2PC path while the failpoint fires
  // exactly once: exactly one member aborts (fully rolled back on both
  // shards), the other commits — whether or not they shared a batch.
  ShardedDatabase db(TestOptions(), 2);
  db.SetSchema(TwoClassSchema());
  const Oid a = *db.CreateObject(0);   // Shard 0.
  const Oid b = *db.CreateObject(0);   // Shard 1.
  const Oid t1 = *db.CreateObject(1);  // Shard 0.
  const Oid t2 = *db.CreateObject(1);  // Shard 1.
  ASSERT_EQ(db.router().ShardOf(a), 0u);
  ASSERT_EQ(db.router().ShardOf(t2), 1u);

  std::atomic<int> fires{0};
  db.coordinator()->SetCommitFailpoint(
      [&]() { return fires.fetch_add(1) == 0; });

  // a → t2 crosses 0→1; b → t1 crosses 1→0. Disjoint lock footprints.
  Status s1, s2;
  std::thread c1([&]() {
    auto txn = db.OpenSession().Begin();
    Status st = txn.SetReference(a, 0, t2);
    s1 = st.ok() ? txn.Commit() : st;
  });
  std::thread c2([&]() {
    auto txn = db.OpenSession().Begin();
    Status st = txn.SetReference(b, 0, t1);
    s2 = st.ok() ? txn.Commit() : st;
  });
  c1.join();
  c2.join();
  db.coordinator()->SetCommitFailpoint(nullptr);

  // Exactly one member died to the failpoint.
  EXPECT_NE(s1.IsAborted(), s2.IsAborted())
      << "s1=" << s1.ToString() << " s2=" << s2.ToString();
  EXPECT_EQ(db.coordinator()->stats().injected_aborts, 1u);

  // The survivor's halves landed on both shards; the victim's neither.
  if (s1.IsAborted()) {
    EXPECT_TRUE(s2.ok());
    EXPECT_EQ(db.PeekObject(a)->orefs[0], kInvalidOid);
    EXPECT_TRUE(db.PeekObject(t2)->backrefs.empty());
    EXPECT_EQ(db.PeekObject(b)->orefs[0], t1);
  } else {
    EXPECT_TRUE(s1.ok());
    EXPECT_EQ(db.PeekObject(b)->orefs[0], kInvalidOid);
    EXPECT_TRUE(db.PeekObject(t1)->backrefs.empty());
    EXPECT_EQ(db.PeekObject(a)->orefs[0], t2);
  }
  // Locks fully drained on both shards either way.
  for (uint32_t k = 0; k < db.shard_count(); ++k) {
    EXPECT_EQ(db.shard(k)->lock_manager()->locked_object_count(), 0u);
  }
}

TEST(GroupCommitTest, ShardedGroupedCommitKeepsSnapshotsWhole) {
  // Writers keep a_.orefs[0] == b_.orefs[0] through grouped commits
  // (fast path AND 2PC members mixed); snapshot readers must never see
  // the invariant broken.
  ShardedDatabase db(TestOptions(), 2);
  db.SetSchema(TwoClassSchema());
  const Oid a = *db.CreateObject(0);   // Shard 0.
  const Oid b = *db.CreateObject(0);   // Shard 1.
  const Oid t1 = *db.CreateObject(1);  // Shard 0.
  const Oid t2 = *db.CreateObject(1);  // Shard 1.

  {
    auto setup = db.OpenSession().Begin();
    ASSERT_TRUE(setup.SetReference(a, 0, t1).ok());
    ASSERT_TRUE(setup.SetReference(b, 0, t1).ok());
    ASSERT_TRUE(setup.Commit().ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};
  std::thread writer([&]() {
    auto session = db.OpenSession();
    const Oid targets[2] = {t1, t2};
    for (uint64_t i = 0; !stop.load(); ++i) {
      auto txn = session.Begin();
      const Oid target = targets[i % 2];
      Status st = txn.SetReference(a, 0, target);
      if (st.ok()) st = txn.SetReference(b, 0, target);
      if (st.ok()) {
        txn.Commit();
      } else {
        txn.Abort();
      }
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&]() {
      auto session = db.OpenSession();
      TxnOptions ro;
      ro.read_only = true;
      for (int i = 0; i < 150; ++i) {
        auto txn = session.Begin(ro);
        auto pair = txn.GetMany(std::vector<Oid>{a, b});
        if (pair.ok() && pair->size() == 2 &&
            (*pair)[0].orefs[0] != (*pair)[1].orefs[0]) {
          torn.fetch_add(1);
        }
        txn.Commit();
      }
    });
  }
  for (auto& t : readers) t.join();
  stop.store(true);
  writer.join();
  EXPECT_EQ(torn.load(), 0u)
      << "a snapshot saw half a grouped cross-shard commit";
}

}  // namespace
}  // namespace ocb
