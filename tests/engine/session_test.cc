// Session API v2 semantics: RAII auto-abort (locks released, pending
// versions sealed), typed lifecycle errors on moved-from handles,
// batched GetMany equivalence with N single gets under 2PL and MVCC,
// WriteBatch per-operation outcomes, engine-side Traverse equivalence,
// legacy brackets, and the strict-2PL read-only flavour.

#include "engine/session.h"

#include <gtest/gtest.h>

#include <vector>

#include "oodb/database.h"
#include "sharding/sharded_database.h"

namespace ocb {
namespace {

StorageOptions TestOptions() {
  StorageOptions opts;
  opts.page_size = 1024;
  opts.buffer_pool_pages = 32;
  return opts;
}

Schema TwoClassSchema() {
  Schema schema;
  schema.SetRefTypes(Schema::DefaultTraits(3));
  ClassDescriptor a;
  a.id = 0;
  a.maxnref = 3;
  a.basesize = 40;
  a.instance_size = 40;
  a.tref = {2, 2, 2};
  a.cref = {1, 1, 0};
  ClassDescriptor b;
  b.id = 1;
  b.maxnref = 2;
  b.basesize = 20;
  b.instance_size = 20;
  b.tref = {2, 2};
  b.cref = {0, 0};
  Schema out = std::move(schema);
  EXPECT_TRUE(out.AddClass(std::move(a)).ok());
  EXPECT_TRUE(out.AddClass(std::move(b)).ok());
  return out;
}

/// Observer spy counting transaction boundaries.
class BoundarySpy : public AccessObserver {
 public:
  void OnTransactionBegin() override { ++begins_; }
  void OnTransactionEnd() override { ++ends_; }
  void OnTransactionAbort() override { ++aborts_; }
  int begins_ = 0;
  int ends_ = 0;
  int aborts_ = 0;
};

class SessionTest : public ::testing::Test {
 protected:
  SessionTest() : db_(TestOptions()) {
    db_.SetSchema(TwoClassSchema());
    source_ = *db_.CreateObject(0);
    target1_ = *db_.CreateObject(1);
    target2_ = *db_.CreateObject(1);
  }

  Database db_;
  Oid source_ = kInvalidOid;
  Oid target1_ = kInvalidOid;
  Oid target2_ = kInvalidOid;
};

TEST_F(SessionTest, AutoAbortOnScopeExitRollsBackAndReleasesLocks) {
  ASSERT_TRUE(db_.SetReference(source_, 0, target1_).ok());
  {
    auto session = db_.OpenSession();
    auto txn = session.Begin();
    ASSERT_TRUE(txn.SetReference(source_, 0, target2_).ok());
    ASSERT_GT(db_.lock_manager()->locked_object_count(), 0u);
    // No Commit: the RAII destructor must abort.
  }
  // Locks drained, mutation rolled back.
  EXPECT_EQ(db_.lock_manager()->locked_object_count(), 0u);
  EXPECT_EQ(db_.PeekObject(source_)->orefs[0], target1_);
  // The pending version was *sealed* (StampAborted), not dropped —
  // that is what keeps racing snapshot readers sound.
  EXPECT_GE(db_.version_store()->stats().versions_discarded, 1u);
  // And it is ordinary GC food afterwards.
  db_.CollectVersionGarbage();
  EXPECT_EQ(db_.version_store()->stats().live_versions, 0u);
}

TEST_F(SessionTest, AutoAbortClosesReadView) {
  {
    auto session = db_.OpenSession();
    TxnOptions ro;
    ro.read_only = true;
    auto txn = session.Begin(ro);
    ASSERT_TRUE(txn.Get(source_).ok());
    EXPECT_EQ(db_.read_views()->open_count(), 1u);
  }
  EXPECT_EQ(db_.read_views()->open_count(), 0u);
}

TEST_F(SessionTest, MovedFromTransactionIsInertAndTyped) {
  auto session = db_.OpenSession();
  auto txn = session.Begin();
  ASSERT_TRUE(txn.SetReference(source_, 0, target1_).ok());
  auto moved = std::move(txn);
  // The moved-from handle refuses everything with a typed error...
  EXPECT_FALSE(txn.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(txn.Get(source_).status().IsInvalidArgument());
  EXPECT_TRUE(txn.Commit().IsInvalidArgument());
  // ...while the moved-to handle owns the transaction and commits it.
  ASSERT_TRUE(moved.valid());
  ASSERT_TRUE(moved.Commit().ok());
  EXPECT_EQ(db_.PeekObject(source_)->orefs[0], target1_);
}

TEST_F(SessionTest, GetManyMatchesSingleGetsUnder2pl) {
  ASSERT_TRUE(db_.SetReference(source_, 0, target1_).ok());
  ASSERT_TRUE(db_.SetReference(source_, 1, target2_).ok());
  const std::vector<Oid> oids = {target2_, source_, target1_, source_};

  auto session = db_.OpenSession();
  auto singles = session.Begin();
  std::vector<Object> expected;
  for (Oid oid : oids) {
    auto obj = singles.Get(oid);
    ASSERT_TRUE(obj.ok());
    expected.push_back(std::move(obj).value());
  }
  ASSERT_TRUE(singles.Commit().ok());

  auto batched = session.Begin();
  auto got = batched.GetMany(oids);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(batched.Commit().ok());

  // Same objects, same (input) order, duplicates preserved.
  ASSERT_EQ(got->size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ((*got)[i].oid, expected[i].oid);
    EXPECT_EQ((*got)[i].orefs, expected[i].orefs);
    EXPECT_EQ((*got)[i].backrefs, expected[i].backrefs);
  }
  EXPECT_EQ(db_.lock_manager()->locked_object_count(), 0u);
}

TEST_F(SessionTest, GetManyMatchesSingleGetsUnderMvcc) {
  ASSERT_TRUE(db_.SetReference(source_, 0, target1_).ok());
  const std::vector<Oid> oids = {source_, target1_, target2_};

  auto session = db_.OpenSession();
  TxnOptions ro;
  ro.read_only = true;
  auto reader = session.Begin(ro);
  ASSERT_TRUE(reader.read_only());

  // A writer commits a change *after* the reader pinned its snapshot.
  auto writer = session.Begin();
  ASSERT_TRUE(writer.SetReference(source_, 0, target2_).ok());
  ASSERT_TRUE(writer.Commit().ok());

  // Single gets and GetMany through the same ReadView agree — and both
  // show the pre-commit state.
  std::vector<Object> expected;
  for (Oid oid : oids) {
    auto obj = reader.Get(oid);
    ASSERT_TRUE(obj.ok());
    expected.push_back(std::move(obj).value());
  }
  auto got = reader.GetMany(oids);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ((*got)[i].oid, expected[i].oid);
    EXPECT_EQ((*got)[i].orefs, expected[i].orefs);
  }
  EXPECT_EQ(expected[0].orefs[0], target1_);  // Snapshot state.
  EXPECT_EQ(reader.lock_wait_nanos(), 0u);    // Never locked anything.
  ASSERT_TRUE(reader.Commit().ok());
}

TEST_F(SessionTest, GetManySkipsVanishedOids) {
  auto session = db_.OpenSession();
  auto txn = session.Begin();
  const Oid dead = 999999;
  auto got = txn.GetMany(std::vector<Oid>{source_, dead, target1_});
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), 2u);
  EXPECT_EQ((*got)[0].oid, source_);
  EXPECT_EQ((*got)[1].oid, target1_);
  ASSERT_TRUE(txn.Commit().ok());
}

TEST_F(SessionTest, ApplyWriteBatchReportsPerOperationOutcomes) {
  auto session = db_.OpenSession();
  auto txn = session.Begin();
  auto src = txn.Get(source_);
  ASSERT_TRUE(src.ok());

  WriteBatch batch;
  batch.Put(src.value());                        // OK (rewrite in place).
  batch.SetReference(source_, 0, target1_);      // OK.
  batch.SetReference(source_, 99, target2_);     // Bad slot: per-op error.
  batch.Delete(target2_);                        // OK.
  auto applied = txn.Apply(std::move(batch));
  ASSERT_TRUE(applied.ok());
  ASSERT_EQ(applied->statuses.size(), 4u);
  EXPECT_TRUE(applied->statuses[0].ok());
  EXPECT_TRUE(applied->statuses[1].ok());
  EXPECT_TRUE(applied->statuses[2].IsInvalidArgument());
  EXPECT_TRUE(applied->statuses[3].ok());
  EXPECT_EQ(applied->applied, 3u);
  EXPECT_FALSE(applied->all_ok());
  ASSERT_TRUE(txn.Commit().ok());

  EXPECT_EQ(db_.PeekObject(source_)->orefs[0], target1_);
  EXPECT_FALSE(db_.ContainsObject(target2_));
}

TEST_F(SessionTest, ApplyWriteBatchRollsBackWithTransactionAbort) {
  ASSERT_TRUE(db_.SetReference(source_, 0, target1_).ok());
  auto session = db_.OpenSession();
  auto txn = session.Begin();
  WriteBatch batch;
  batch.SetReference(source_, 0, target2_);
  batch.Delete(target1_);
  auto applied = txn.Apply(std::move(batch));
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(applied->applied, 2u);
  ASSERT_TRUE(txn.Abort().ok());

  // Transaction-level atomicity undoes the whole batch.
  EXPECT_EQ(db_.PeekObject(source_)->orefs[0], target1_);
  EXPECT_TRUE(db_.ContainsObject(target1_));
}

TEST_F(SessionTest, TraverseCountsReachableObjectsEngineSide) {
  // source → target1 and source → target2; target1/target2 are leaves.
  ASSERT_TRUE(db_.SetReference(source_, 0, target1_).ok());
  ASSERT_TRUE(db_.SetReference(source_, 1, target2_).ok());

  auto session = db_.OpenSession();
  auto txn = session.Begin();
  auto root = txn.Get(source_);
  ASSERT_TRUE(root.ok());

  TraversePolicy dfs;
  dfs.kind = TraverseKind::kDepthFirst;
  auto walked = txn.Traverse(root.value(), 2, dfs);
  ASSERT_TRUE(walked.ok());
  EXPECT_EQ(*walked, 2u);  // Both children, no grandchildren.

  TraversePolicy bfs;
  bfs.kind = TraverseKind::kBreadthFirst;
  auto broad = txn.Traverse(root.value(), 1, bfs);
  ASSERT_TRUE(broad.ok());
  EXPECT_EQ(*broad, 2u);

  // Reversed from a leaf ascends the backref.
  auto leaf = txn.Get(target1_);
  ASSERT_TRUE(leaf.ok());
  TraversePolicy up;
  up.kind = TraverseKind::kDepthFirst;
  up.reversed = true;
  auto ascended = txn.Traverse(leaf.value(), 1, up);
  ASSERT_TRUE(ascended.ok());
  EXPECT_EQ(*ascended, 1u);  // Back to source.
  ASSERT_TRUE(txn.Commit().ok());
}

TEST_F(SessionTest, LegacyBracketFiresObserverBoundariesAndAutoCloses) {
  BoundarySpy spy;
  db_.SetObserver(&spy);
  {
    auto session = db_.OpenSession();
    auto txn = session.BeginLegacy();
    EXPECT_TRUE(txn.legacy());
    ASSERT_TRUE(txn.Get(source_).ok());
    // No locks on the legacy path.
    EXPECT_EQ(db_.lock_manager()->locked_object_count(), 0u);
    // Scope exit closes the bracket without a Commit call.
  }
  EXPECT_EQ(spy.begins_, 1);
  EXPECT_EQ(spy.ends_, 1);
  EXPECT_EQ(spy.aborts_, 0);

  auto session = db_.OpenSession();
  auto txn = session.BeginLegacy();
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_EQ(spy.begins_, 2);
  EXPECT_EQ(spy.ends_, 2);
  db_.SetObserver(nullptr);
}

TEST_F(SessionTest, Strict2plReadOnlyLocksButRefusesWrites) {
  auto session = db_.OpenSession();
  TxnOptions options;
  options.read_only = true;
  options.isolation = IsolationLevel::kStrict2PL;
  auto txn = session.Begin(options);
  // Not an MVCC reader: reads take real S locks...
  EXPECT_FALSE(txn.read_only());
  ASSERT_TRUE(txn.Get(source_).ok());
  EXPECT_GT(db_.lock_manager()->locked_object_count(), 0u);
  // ...but the session layer still refuses writes (typed, API-level).
  EXPECT_TRUE(txn.SetReference(source_, 0, target1_).IsInvalidArgument());
  EXPECT_TRUE(txn.Delete(source_).IsInvalidArgument());
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_EQ(db_.lock_manager()->locked_object_count(), 0u);
}

TEST_F(SessionTest, TxnOptionsDeadlockPolicyForwardsEngineWide) {
  auto session = db_.OpenSession();
  EXPECT_EQ(db_.deadlock_policy(), DeadlockPolicy::kCycleCloser);
  TxnOptions options;
  options.deadlock_policy = DeadlockPolicy::kWoundWait;
  auto txn = session.Begin(options);
  EXPECT_EQ(db_.deadlock_policy(), DeadlockPolicy::kWoundWait);
  ASSERT_TRUE(txn.Commit().ok());

  // A Begin with *default* options must NOT silently revert the
  // configured policy (deadlock_policy is unset by default).
  auto keeps = session.Begin();
  EXPECT_EQ(db_.deadlock_policy(), DeadlockPolicy::kWoundWait);
  ASSERT_TRUE(keeps.Commit().ok());

  // Restoring takes an explicit request.
  TxnOptions restore_options;
  restore_options.deadlock_policy = DeadlockPolicy::kCycleCloser;
  auto restore = session.Begin(restore_options);
  EXPECT_EQ(db_.deadlock_policy(), DeadlockPolicy::kCycleCloser);
  ASSERT_TRUE(restore.Commit().ok());
}

TEST_F(SessionTest, ShardedSessionSpeaksTheSameApi) {
  ShardedDatabase sharded(TestOptions(), 2);
  sharded.SetSchema(TwoClassSchema());
  const Oid a = *sharded.CreateObject(0);   // Shard 0.
  const Oid b = *sharded.CreateObject(0);   // Shard 1.
  const Oid t = *sharded.CreateObject(1);   // Shard 0.

  auto session = sharded.OpenSession();
  auto txn = session.Begin();
  ASSERT_TRUE(txn.SetReference(a, 0, b).ok());  // Cross-shard.
  auto got = txn.GetMany(std::vector<Oid>{a, b, t});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), 3u);
  EXPECT_TRUE(txn.cross_shard());
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_EQ(sharded.PeekObject(a)->orefs[0], b);

  // RAII auto-abort across shards.
  {
    auto doomed = session.Begin();
    ASSERT_TRUE(doomed.SetReference(a, 1, t).ok());
  }
  EXPECT_EQ(sharded.PeekObject(a)->orefs[1], kInvalidOid);
  for (uint32_t k = 0; k < sharded.shard_count(); ++k) {
    EXPECT_EQ(sharded.shard(k)->lock_manager()->locked_object_count(), 0u);
  }
}

}  // namespace
}  // namespace ocb
