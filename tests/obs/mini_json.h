/// \file mini_json.h
/// \brief Minimal recursive-descent JSON parser for the obs tests: enough
///        to assert that the trace dumps and metric snapshots the layer
///        emits are *well-formed* JSON (RFC 8259 subset: no surrogate
///        handling in \u escapes — the emitter never produces them) and
///        to walk their structure. Test-only; the production code never
///        parses JSON.

#ifndef OCB_TESTS_OBS_MINI_JSON_H_
#define OCB_TESTS_OBS_MINI_JSON_H_

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ocb {
namespace test_json {

struct Value;
using ValuePtr = std::shared_ptr<Value>;

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<ValuePtr> items;
  std::map<std::string, ValuePtr> members;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// Object member or nullptr.
  const Value* Get(const std::string& key) const {
    auto it = members.find(key);
    return it == members.end() ? nullptr : it->second.get();
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  /// Returns the document root, or nullptr on any syntax error (position
  /// of the failure in *error for the test log).
  ValuePtr Parse(std::string* error) {
    ValuePtr v = ParseValue();
    SkipWs();
    if (v == nullptr || pos_ != s_.size()) {
      if (error != nullptr) {
        *error = "parse error at byte " + std::to_string(pos_);
      }
      return nullptr;
    }
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  ValuePtr ParseValue() {
    SkipWs();
    if (pos_ >= s_.size()) return nullptr;
    switch (s_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
      case 'f':
        return ParseBool();
      case 'n':
        return ParseNull();
      default:
        return ParseNumber();
    }
  }

  ValuePtr ParseObject() {
    if (!Consume('{')) return nullptr;
    auto v = std::make_shared<Value>();
    v->kind = Value::Kind::kObject;
    SkipWs();
    if (Consume('}')) return v;
    while (true) {
      ValuePtr key = ParseString();
      if (key == nullptr || !Consume(':')) return nullptr;
      ValuePtr member = ParseValue();
      if (member == nullptr) return nullptr;
      v->members[key->str] = member;
      if (Consume(',')) continue;
      if (Consume('}')) return v;
      return nullptr;
    }
  }

  ValuePtr ParseArray() {
    if (!Consume('[')) return nullptr;
    auto v = std::make_shared<Value>();
    v->kind = Value::Kind::kArray;
    SkipWs();
    if (Consume(']')) return v;
    while (true) {
      ValuePtr item = ParseValue();
      if (item == nullptr) return nullptr;
      v->items.push_back(item);
      if (Consume(',')) continue;
      if (Consume(']')) return v;
      return nullptr;
    }
  }

  ValuePtr ParseString() {
    SkipWs();
    if (pos_ >= s_.size() || s_[pos_] != '"') return nullptr;
    ++pos_;
    auto v = std::make_shared<Value>();
    v->kind = Value::Kind::kString;
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return v;
      if (c == '\\') {
        if (pos_ >= s_.size()) return nullptr;
        char e = s_[pos_++];
        switch (e) {
          case '"': v->str.push_back('"'); break;
          case '\\': v->str.push_back('\\'); break;
          case '/': v->str.push_back('/'); break;
          case 'b': v->str.push_back('\b'); break;
          case 'f': v->str.push_back('\f'); break;
          case 'n': v->str.push_back('\n'); break;
          case 'r': v->str.push_back('\r'); break;
          case 't': v->str.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return nullptr;
            const std::string hex = s_.substr(pos_, 4);
            pos_ += 4;
            char* end = nullptr;
            const long cp = std::strtol(hex.c_str(), &end, 16);
            if (end != hex.c_str() + 4) return nullptr;
            // The emitter only writes \u00xx control escapes.
            v->str.push_back(static_cast<char>(cp & 0xff));
            break;
          }
          default:
            return nullptr;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return nullptr;  // Raw control character: malformed.
      } else {
        v->str.push_back(c);
      }
    }
    return nullptr;  // Unterminated.
  }

  ValuePtr ParseNumber() {
    SkipWs();
    const size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return nullptr;
    auto v = std::make_shared<Value>();
    v->kind = Value::Kind::kNumber;
    v->number = std::strtod(s_.substr(start, pos_ - start).c_str(), nullptr);
    return v;
  }

  ValuePtr ParseBool() {
    SkipWs();
    auto v = std::make_shared<Value>();
    v->kind = Value::Kind::kBool;
    if (s_.compare(pos_, 4, "true") == 0) {
      v->boolean = true;
      pos_ += 4;
      return v;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      v->boolean = false;
      pos_ += 5;
      return v;
    }
    return nullptr;
  }

  ValuePtr ParseNull() {
    SkipWs();
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      auto v = std::make_shared<Value>();
      return v;
    }
    return nullptr;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

inline ValuePtr ParseJson(const std::string& text, std::string* error) {
  return Parser(text).Parse(error);
}

}  // namespace test_json
}  // namespace ocb

#endif  // OCB_TESTS_OBS_MINI_JSON_H_
