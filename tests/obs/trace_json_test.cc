/// \file trace_json_test.cc
/// \brief End-to-end trace validation: run real transactions against a
///        Database with the recorder on, Dump() the ring to a file, parse
///        it back (mini_json), and assert the Chrome-trace-event structure
///        the viewer relies on — mandatory fields, and nesting-by-
///        containment of the engine spans inside their transaction span.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/session.h"
#include "mini_json.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "ocb/generator.h"
#include "ocb/presets.h"

namespace ocb {
namespace {

using obs::TraceRecorder;
using test_json::ParseJson;
using test_json::Value;

struct Span {
  std::string name;
  double ts = 0;
  double dur = 0;
  double tid = 0;
};

std::vector<Span> CompleteSpans(const Value& doc) {
  std::vector<Span> out;
  const Value* events = doc.Get("traceEvents");
  if (events == nullptr) return out;
  for (const auto& ev : events->items) {
    const Value* ph = ev->Get("ph");
    if (ph == nullptr || ph->str != "X") continue;
    Span s;
    s.name = ev->Get("name")->str;
    s.ts = ev->Get("ts")->number;
    s.dur = ev->Get("dur")->number;
    s.tid = ev->Get("tid")->number;
    out.push_back(s);
  }
  return out;
}

bool NestsInside(const Span& inner, const Span& outer) {
  return inner.tid == outer.tid && outer.ts <= inner.ts &&
         inner.ts + inner.dur <= outer.ts + outer.dur;
}

TEST(TraceJsonTest, CommitSpansNestInsideTransactionSpan) {
  obs::SetEnabled(true);

  // A tiny pool forces miss I/O inside the transaction, so the trace
  // carries io.miss spans alongside the commit-path ones.
  StorageOptions storage;
  storage.buffer_pool_pages = 16;
  Database db(storage);
  OcbPreset preset = presets::Default();
  preset.database.num_classes = 4;
  preset.database.num_objects = 400;
  preset.database.seed = 7;
  ASSERT_TRUE(GenerateDatabase(preset.database, &db).ok());
  const std::vector<Oid> roots = db.LiveOidsSnapshot();
  ASSERT_GE(roots.size(), 40u);

  // Trace only the transaction under test, not generation.
  auto& rec = TraceRecorder::Global();
  rec.Enable();
  {
    Session session = db.OpenSession();
    auto txn = session.Begin();
    auto batch =
        txn.GetMany(std::vector<Oid>(roots.begin(), roots.begin() + 32));
    ASSERT_TRUE(batch.ok());
    ASSERT_TRUE(txn.SetReference(roots[0], 0, roots[1]).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  rec.Disable();

  const std::string path =
      testing::TempDir() + "/ocb_trace_json_test.json";
  ASSERT_TRUE(rec.Dump(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::remove(path.c_str());

  std::string error;
  const auto doc = ParseJson(buffer.str(), &error);
  ASSERT_NE(doc, nullptr) << error;
  ASSERT_TRUE(doc->is_object());
  const Value* events = doc->Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_FALSE(events->items.empty());
  for (const auto& ev : events->items) {
    ASSERT_TRUE(ev->is_object());
    for (const char* key : {"name", "ph", "ts", "pid", "tid"}) {
      ASSERT_NE(ev->Get(key), nullptr) << key;
    }
  }

  const std::vector<Span> spans = CompleteSpans(*doc);
  // The write transaction must appear as one "txn" complete event...
  const Span* txn_span = nullptr;
  for (const Span& s : spans) {
    if (s.name == "txn" && (txn_span == nullptr || s.dur > txn_span->dur)) {
      txn_span = &s;
    }
  }
  ASSERT_NE(txn_span, nullptr) << "no txn span recorded";

  // ...with the commit stamp and at least one miss I/O nested inside it
  // (same tid, [ts, ts+dur] containment — exactly how Perfetto nests).
  int nested_stamps = 0;
  int nested_ios = 0;
  for (const Span& s : spans) {
    if (s.name == "commit.stamp" && NestsInside(s, *txn_span)) {
      ++nested_stamps;
    }
    if (s.name == "io.miss" && NestsInside(s, *txn_span)) ++nested_ios;
  }
  EXPECT_GE(nested_stamps, 1)
      << "commit.stamp span does not nest inside the txn span";
  EXPECT_GE(nested_ios, 1)
      << "no io.miss span nests inside the txn span";
}

TEST(TraceJsonTest, ReadOnlySnapshotTransactionCarriesRoArg) {
  obs::SetEnabled(true);
  StorageOptions storage;
  storage.buffer_pool_pages = 64;
  Database db(storage);
  OcbPreset preset = presets::Default();
  preset.database.num_classes = 2;
  preset.database.num_objects = 100;
  preset.database.seed = 11;
  ASSERT_TRUE(GenerateDatabase(preset.database, &db).ok());
  db.SetMvccEnabled(true);
  const std::vector<Oid> roots = db.LiveOidsSnapshot();

  auto& rec = TraceRecorder::Global();
  rec.Enable();
  {
    Session session = db.OpenSession();
    TxnOptions ro;
    ro.read_only = true;
    auto reader = session.Begin(ro);
    ASSERT_TRUE(reader.Get(roots[0]).ok());
    ASSERT_TRUE(reader.Commit().ok());
  }
  rec.Disable();

  std::string error;
  const auto doc = ParseJson(rec.ToJson(), &error);
  ASSERT_NE(doc, nullptr) << error;
  const Value* events = doc->Get("traceEvents");
  ASSERT_NE(events, nullptr);
  bool found_ro_txn = false;
  for (const auto& ev : events->items) {
    if (ev->Get("name")->str != "txn") continue;
    const Value* args = ev->Get("args");
    if (args == nullptr) continue;
    const Value* ro_arg = args->Get("ro");
    if (ro_arg != nullptr && ro_arg->number == 1.0) found_ro_txn = true;
  }
  EXPECT_TRUE(found_ro_txn) << "no read-only txn span with ro=1 arg";
}

}  // namespace
}  // namespace ocb
