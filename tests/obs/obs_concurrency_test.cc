/// \file obs_concurrency_test.cc
/// \brief Multi-threaded hammering of the observability layer — runs under
///        TSan via the `concurrency` ctest label. Covers: counter striping
///        under contention, histogram recording against concurrent
///        snapshots, registry instrument creation races, gauge
///        registration/unregistration against snapshotting, and the trace
///        ring under heavy wraparound with a concurrent dumper.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mini_json.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace ocb {
namespace obs {
namespace {

class ObsConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override { SetEnabled(true); }
};

TEST_F(ObsConcurrencyTest, CountersUnderContention) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kAdds = 50000;
  std::vector<std::thread> threads;
  std::atomic<bool> stop{false};
  // A reader thread sums concurrently — torn totals are fine (sharded
  // counter), data races are not (TSan's job here).
  std::thread reader([&]() {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)c.Value();
    }
  });
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c]() {
      for (int i = 0; i < kAdds; ++i) c.Add(1);
    });
  }
  for (auto& t : threads) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kAdds);
}

TEST_F(ObsConcurrencyTest, HistogramRecordAgainstConcurrentSnapshots) {
  auto& reg = MetricsRegistry::Global();
  LatencyHistogram* h = reg.GetHistogram("test.conc.histo");
  const MetricsSnapshot before = reg.Snapshot();
  constexpr int kThreads = 8;
  constexpr int kRecords = 20000;
  std::atomic<bool> stop{false};
  std::thread snapshotter([&]() {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)reg.Snapshot();
    }
  });
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t]() {
      for (int i = 0; i < kRecords; ++i) {
        h->Record(static_cast<uint64_t>(t) * 1000 + i % 997);
      }
    });
  }
  for (auto& t : threads) t.join();
  stop.store(true, std::memory_order_relaxed);
  snapshotter.join();
  const HistogramStats s =
      reg.Snapshot().Diff(before).Histo("test.conc.histo");
  EXPECT_EQ(s.count, static_cast<uint64_t>(kThreads) * kRecords);
}

TEST_F(ObsConcurrencyTest, InstrumentCreationRaces) {
  auto& reg = MetricsRegistry::Global();
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, &seen, t]() {
      // All threads race to create the same instruments; everyone must
      // get the same stable pointer.
      seen[static_cast<size_t>(t)] = reg.GetCounter("test.conc.create");
      reg.GetHistogram("test.conc.create.histo")->Record(1);
      seen[static_cast<size_t>(t)]->Add(1);
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<size_t>(t)], seen[0]);
  }
  EXPECT_GE(seen[0]->Value(), static_cast<uint64_t>(kThreads));
}

TEST_F(ObsConcurrencyTest, GaugeChurnAgainstSnapshots) {
  auto& reg = MetricsRegistry::Global();
  constexpr int kThreads = 4;
  constexpr int kCycles = 500;
  std::atomic<bool> stop{false};
  std::thread snapshotter([&]() {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)reg.Snapshot();
    }
  });
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t]() {
      for (int i = 0; i < kCycles; ++i) {
        // Each cycle registers a gauge over a stack variable and clears
        // it before the variable dies — the ScopedCallbacks contract the
        // engine relies on in ~Database.
        uint64_t level = static_cast<uint64_t>(t * 1000 + i);
        ScopedCallbacks cbs;
        cbs.Register("test.conc.gauge", [&level]() { return level; });
        cbs.Clear();
      }
    });
  }
  for (auto& t : threads) t.join();
  stop.store(true, std::memory_order_relaxed);
  snapshotter.join();
  EXPECT_FALSE(reg.Snapshot().Has("test.conc.gauge"));
}

TEST_F(ObsConcurrencyTest, TraceRingWrapsUnderConcurrentWritersAndDumper) {
  auto& rec = TraceRecorder::Global();
  rec.Enable();
  const uint64_t recorded_before = rec.recorded();
  constexpr int kThreads = 8;
  // 8 × 20k = 160k events: the 64Ki ring wraps ~2.5 times, so writers
  // lap each other on live slots while the dumper reads them — the
  // benign-race design TSan must bless.
  constexpr int kEvents = 20000;
  std::atomic<bool> stop{false};
  std::thread dumper([&]() {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)rec.ToJson();
    }
  });
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, t]() {
      for (int i = 0; i < kEvents; ++i) {
        const uint64_t now = rec.NowNanos();
        rec.RecordComplete("test.span", now > 100 ? now - 100 : 0, 100,
                           "thread", static_cast<uint64_t>(t), "i",
                           static_cast<uint64_t>(i));
        if (i % 64 == 0) rec.RecordInstant("test.instant");
      }
    });
  }
  for (auto& t : threads) t.join();
  stop.store(true, std::memory_order_relaxed);
  dumper.join();
  rec.Disable();
  EXPECT_GE(rec.recorded() - recorded_before,
            static_cast<uint64_t>(kThreads) * kEvents);

  // After the storm the ring must still serialize to well-formed JSON.
  std::string error;
  const auto doc = test_json::ParseJson(rec.ToJson(), &error);
  ASSERT_NE(doc, nullptr) << error;
  const auto* events = doc->Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // The ring holds the latest kRingSize events; every published slot
  // must carry the mandatory trace-event fields.
  EXPECT_GT(events->items.size(), TraceRecorder::kRingSize / 2);
  for (const auto& ev : events->items) {
    ASSERT_TRUE(ev->is_object());
    ASSERT_NE(ev->Get("name"), nullptr);
    ASSERT_NE(ev->Get("ph"), nullptr);
    ASSERT_NE(ev->Get("ts"), nullptr);
    ASSERT_NE(ev->Get("tid"), nullptr);
  }
}

TEST_F(ObsConcurrencyTest, SpansFromManyThreads) {
  auto& rec = TraceRecorder::Global();
  rec.Enable();
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([]() {
      for (int i = 0; i < 1000; ++i) {
        TraceSpan outer("test.outer", "i", static_cast<uint64_t>(i));
        TraceSpan inner("test.inner");
        TraceInstant("test.tick");
      }
    });
  }
  for (auto& t : threads) t.join();
  rec.Disable();
  std::string error;
  ASSERT_NE(test_json::ParseJson(rec.ToJson(), &error), nullptr) << error;
}

}  // namespace
}  // namespace obs
}  // namespace ocb
