/// \file metrics_registry_test.cc
/// \brief Registry unit tests: histogram bucketing / percentile math,
///        counter striping, snapshot/diff windows, callback gauges, and
///        the JSON writer (including the snapshot's own ToJson output).
///
/// The registry is process-global and instruments are cumulative by
/// design, so every test uses uniquely named instruments and windows with
/// Snapshot/Diff instead of expecting pristine state.

#include "obs/metrics_registry.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mini_json.h"
#include "obs/json_writer.h"

namespace ocb {
namespace obs {
namespace {

class MetricsRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { SetEnabled(true); }
};

// --- Histogram bucket math --------------------------------------------------

TEST_F(MetricsRegistryTest, BucketForIsIdentityForSmallValues) {
  for (uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(LatencyHistogram::BucketFor(v), static_cast<int>(v)) << v;
    EXPECT_EQ(LatencyHistogram::BucketUpperBound(static_cast<int>(v)), v);
  }
}

TEST_F(MetricsRegistryTest, BucketUpperBoundsAreMonotonic) {
  for (int b = 1; b < LatencyHistogram::kNumBuckets; ++b) {
    EXPECT_GT(LatencyHistogram::BucketUpperBound(b),
              LatencyHistogram::BucketUpperBound(b - 1))
        << "bucket " << b;
  }
}

TEST_F(MetricsRegistryTest, UpperBoundRoundTripsToItsOwnBucket) {
  // The upper bound is *inclusive*: a value equal to it must land in the
  // same bucket, and upper+1 in a later one.
  for (int b = 0; b < LatencyHistogram::kNumBuckets - 1; ++b) {
    const uint64_t ub = LatencyHistogram::BucketUpperBound(b);
    EXPECT_EQ(LatencyHistogram::BucketFor(ub), b) << "ub(" << b << ")=" << ub;
    EXPECT_GT(LatencyHistogram::BucketFor(ub + 1), b);
  }
}

TEST_F(MetricsRegistryTest, RelativeErrorStaysUnderEightPercent) {
  // 16 linear sub-buckets per octave bound the bucket width at 1/16 of
  // the octave base, so the reported upper bound overshoots the true
  // value by < 1/16 ≈ 6.25% (plus integer truncation slack).
  for (uint64_t v : {17ULL, 100ULL, 999ULL, 12345ULL, 1000000ULL,
                     987654321ULL, 123456789012ULL}) {
    const int b = LatencyHistogram::BucketFor(v);
    const uint64_t ub = LatencyHistogram::BucketUpperBound(b);
    ASSERT_GE(ub, v);
    EXPECT_LT(static_cast<double>(ub - v), 0.08 * static_cast<double>(v))
        << "value " << v << " reported as " << ub;
  }
}

TEST_F(MetricsRegistryTest, ExactPercentilesForSmallValues) {
  LatencyHistogram h;
  // Values < 16 are bucketed exactly, so percentiles are exact.
  for (int i = 0; i < 10; ++i) h.Record(5);
  for (int i = 0; i < 10; ++i) h.Record(10);
  const HistogramStats s = LatencyHistogram::StatsFromBuckets(
      h.SnapshotBuckets());
  EXPECT_EQ(s.count, 20u);
  EXPECT_EQ(s.p50, 5u);
  EXPECT_EQ(s.p95, 10u);
  EXPECT_EQ(s.p99, 10u);
  EXPECT_EQ(s.max, 10u);
  EXPECT_EQ(s.sum_approx, 10u * 5 + 10u * 10);
}

TEST_F(MetricsRegistryTest, PercentilesOfUniformDistribution) {
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  const HistogramStats s = LatencyHistogram::StatsFromBuckets(
      h.SnapshotBuckets());
  EXPECT_EQ(s.count, 1000u);
  // Log-bucket approximation: reported percentile is the bucket's upper
  // bound, within ~8% above the true rank value.
  EXPECT_GE(s.p50, 500u);
  EXPECT_LE(s.p50, 540u);
  EXPECT_GE(s.p95, 950u);
  EXPECT_LE(s.p95, 1030u);
  EXPECT_GE(s.p99, 990u);
  EXPECT_LE(s.p99, 1070u);
  EXPECT_GE(s.max, 1000u);
  EXPECT_LE(s.max, 1070u);
  const double mean = s.mean();
  EXPECT_GT(mean, 450.0);
  EXPECT_LT(mean, 560.0);
}

TEST_F(MetricsRegistryTest, EmptyHistogramIsAllZero) {
  LatencyHistogram h;
  const HistogramStats s = LatencyHistogram::StatsFromBuckets(
      h.SnapshotBuckets());
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p50, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

// --- Counters ---------------------------------------------------------------

TEST_F(MetricsRegistryTest, CounterSumsAcrossThreadStripes) {
  Counter c;
  c.Add(3);
  c.Add();
  EXPECT_EQ(c.Value(), 4u);
  // Other threads land on other stripes; Value() sums them all.
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c]() {
      for (int i = 0; i < 1000; ++i) c.Add(2);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), 4u + 4 * 1000 * 2);
}

TEST_F(MetricsRegistryTest, RuntimeDisableDropsRecords) {
  Counter c;
  LatencyHistogram h;
  SetEnabled(false);
  c.Add(100);
  h.Record(100);
  SetEnabled(true);
  c.Add(1);
  h.Record(1);
  EXPECT_EQ(c.Value(), 1u);
  EXPECT_EQ(LatencyHistogram::StatsFromBuckets(h.SnapshotBuckets()).count,
            1u);
}

TEST_F(MetricsRegistryTest, GetCounterReturnsStablePointerPerName) {
  auto& reg = MetricsRegistry::Global();
  Counter* a = reg.GetCounter("test.stable.counter");
  Counter* b = reg.GetCounter("test.stable.counter");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, reg.GetCounter("test.stable.counter2"));
  LatencyHistogram* ha = reg.GetHistogram("test.stable.histo");
  EXPECT_EQ(ha, reg.GetHistogram("test.stable.histo"));
}

// --- Snapshot / Diff --------------------------------------------------------

TEST_F(MetricsRegistryTest, SnapshotDiffWindowsCounters) {
  auto& reg = MetricsRegistry::Global();
  Counter* c = reg.GetCounter("test.window.counter");
  c->Add(10);
  const MetricsSnapshot before = reg.Snapshot();
  c->Add(7);
  const MetricsSnapshot window = reg.Snapshot().Diff(before);
  EXPECT_EQ(window.Value("test.window.counter"), 7u);
}

TEST_F(MetricsRegistryTest, SnapshotDiffWindowsHistogramsBucketwise) {
  auto& reg = MetricsRegistry::Global();
  LatencyHistogram* h = reg.GetHistogram("test.window.histo");
  h->Record(1000);
  const MetricsSnapshot before = reg.Snapshot();
  h->Record(5);
  h->Record(5);
  h->Record(2000000);
  const HistogramStats s =
      reg.Snapshot().Diff(before).Histo("test.window.histo");
  EXPECT_EQ(s.count, 3u);  // The pre-window record is subtracted out.
  EXPECT_EQ(s.p50, 5u);
  EXPECT_GE(s.max, 2000000u);
}

TEST_F(MetricsRegistryTest, CallbackGaugesSumAcrossRegistrations) {
  auto& reg = MetricsRegistry::Global();
  uint64_t shard_a = 11;
  uint64_t shard_b = 31;
  ScopedCallbacks cbs;
  cbs.Register("test.gauge.sum", [&shard_a]() { return shard_a; });
  cbs.Register("test.gauge.sum", [&shard_b]() { return shard_b; });
  EXPECT_EQ(reg.Snapshot().Value("test.gauge.sum"), 42u);
  shard_a = 100;
  EXPECT_EQ(reg.Snapshot().Value("test.gauge.sum"), 131u);
}

TEST_F(MetricsRegistryTest, GaugesAreLevelsNotFlowsInDiff) {
  auto& reg = MetricsRegistry::Global();
  uint64_t level = 50;
  ScopedCallbacks cbs;
  cbs.Register("test.gauge.level", [&level]() { return level; });
  const MetricsSnapshot before = reg.Snapshot();
  level = 80;
  // A gauge is a level: Diff reports the newer reading, not 80 - 50.
  EXPECT_EQ(reg.Snapshot().Diff(before).Value("test.gauge.level"), 80u);
}

TEST_F(MetricsRegistryTest, ClearedCallbacksVanishFromSnapshots) {
  auto& reg = MetricsRegistry::Global();
  {
    ScopedCallbacks cbs;
    cbs.Register("test.gauge.scoped", []() { return 7u; });
    EXPECT_TRUE(reg.Snapshot().Has("test.gauge.scoped"));
  }  // ~ScopedCallbacks unregisters.
  EXPECT_FALSE(reg.Snapshot().Has("test.gauge.scoped"));
}

TEST_F(MetricsRegistryTest, SnapshotToJsonParses) {
  auto& reg = MetricsRegistry::Global();
  reg.GetCounter("test.json.counter")->Add(5);
  reg.GetHistogram("test.json.histo")->Record(123);
  std::string error;
  const auto doc = test_json::ParseJson(reg.Snapshot().ToJson(), &error);
  ASSERT_NE(doc, nullptr) << error;
  ASSERT_TRUE(doc->is_object());
  const auto* counters = doc->Get("counters");
  ASSERT_NE(counters, nullptr);
  const auto* c = counters->Get("test.json.counter");
  ASSERT_NE(c, nullptr);
  EXPECT_GE(c->number, 5.0);
  const auto* histos = doc->Get("histograms");
  ASSERT_NE(histos, nullptr);
  const auto* h = histos->Get("test.json.histo");
  ASSERT_NE(h, nullptr);
  for (const char* key : {"count", "mean", "p50", "p95", "p99", "max"}) {
    EXPECT_NE(h->Get(key), nullptr) << key;
  }
}

// --- JsonWriter -------------------------------------------------------------

TEST(JsonWriterTest, NestedContainersEmitNoStrayCommas) {
  // Regression: a keyed BeginObject/BeginArray used to leak the comma
  // state set by writing its own key into its first child.
  JsonWriter w;
  w.BeginObject()
      .BeginObject("a")
      .Field("b", uint64_t{1})
      .EndObject()
      .BeginArray("c");
  w.Value(uint64_t{1}).Value(uint64_t{2});
  w.EndArray().BeginArray("d").BeginObject().Field("e", "x").EndObject();
  w.EndArray().EndObject();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(w.str(), R"({"a":{"b":1},"c":[1,2],"d":[{"e":"x"}]})");
}

TEST(JsonWriterTest, EscapesStringsPerRfc8259) {
  JsonWriter w;
  w.BeginObject().Field("k", "a\"b\\c\nd\te\x01").EndObject();
  EXPECT_EQ(w.str(), "{\"k\":\"a\\\"b\\\\c\\nd\\te\\u0001\"}");
  std::string error;
  const auto doc = test_json::ParseJson(w.str(), &error);
  ASSERT_NE(doc, nullptr) << error;
  EXPECT_EQ(doc->Get("k")->str, "a\"b\\c\nd\te\x01");
}

TEST(JsonWriterTest, MixedScalarsRoundTrip) {
  JsonWriter w;
  w.BeginObject()
      .Field("u", uint64_t{18446744073709551615ULL})
      .Field("i", int64_t{-42})
      .Field("d", 0.125)
      .Field("b", true)
      .Raw("raw", "{\"x\":1}")
      .EndObject();
  EXPECT_TRUE(w.complete());
  std::string error;
  const auto doc = test_json::ParseJson(w.str(), &error);
  ASSERT_NE(doc, nullptr) << error;
  EXPECT_EQ(doc->Get("i")->number, -42.0);
  EXPECT_EQ(doc->Get("d")->number, 0.125);
  EXPECT_TRUE(doc->Get("b")->boolean);
  EXPECT_EQ(doc->Get("raw")->Get("x")->number, 1.0);
}

}  // namespace
}  // namespace obs
}  // namespace ocb
