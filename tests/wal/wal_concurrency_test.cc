// WAL writer under concurrency: many session threads commit through the
// group-commit pipeline (the leader does all appending and forcing on
// followers' behalf), then the log is replayed into a fresh engine and
// every committed transaction must be there, whole and linked. Lives in
// tests/wal/ with "concurrency" in the name so CI's TSan job picks it up
// via the concurrency ctest label.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/session.h"
#include "oodb/database.h"
#include "oodb/snapshot.h"
#include "sharding/sharded_database.h"
#include "util/format.h"
#include "wal/recovery.h"

namespace ocb {
namespace {

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

Schema TwoClassSchema() {
  Schema schema;
  schema.SetRefTypes(Schema::DefaultTraits(3));
  ClassDescriptor a;
  a.id = 0;
  a.maxnref = 3;
  a.basesize = 40;
  a.instance_size = 40;
  a.tref = {2, 2, 2};
  a.cref = {1, 1, 0};
  ClassDescriptor b;
  b.id = 1;
  b.maxnref = 2;
  b.basesize = 20;
  b.instance_size = 20;
  b.tref = {2, 2};
  b.cref = {0, 0};
  Schema out = std::move(schema);
  EXPECT_TRUE(out.AddClass(std::move(a)).ok());
  EXPECT_TRUE(out.AddClass(std::move(b)).ok());
  return out;
}

class WalConcurrencyTest : public ::testing::Test {
 protected:
  void TearDown() override {
    std::remove(wal_.c_str());
    for (uint32_t k = 0; k < 8; ++k) {
      std::remove((wal_ + Format(".shard%u", k)).c_str());
    }
    std::remove((wal_ + ".coord").c_str());
  }

  StorageOptions WalOptions() {
    StorageOptions opts;
    opts.page_size = 1024;
    opts.buffer_pool_pages = 64;
    opts.wal_path = wal_;
    return opts;
  }

  std::string wal_ = TempPath("ocb_wal_concurrency_test.wal");
};

// Runs kThreads committer threads against \p db, each committing
// kTxnsPerThread linked pairs; returns every committed {a, b}.
template <typename DB>
std::vector<std::pair<Oid, Oid>> Storm(DB* db, int threads, int per_thread) {
  std::mutex mu;
  std::vector<std::pair<Oid, Oid>> committed;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([db, per_thread, &mu, &committed]() {
      auto session = db->OpenSession();
      for (int i = 0; i < per_thread; ++i) {
        auto txn = session.Begin();
        auto a = txn.Create(0);
        auto b = txn.Create(1);
        ASSERT_TRUE(a.ok() && b.ok());
        ASSERT_TRUE(txn.SetReference(*a, 0, *b).ok());
        ASSERT_TRUE(txn.Commit().ok());
        std::lock_guard<std::mutex> lock(mu);
        committed.emplace_back(*a, *b);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  return committed;
}

TEST_F(WalConcurrencyTest, ConcurrentCommittersAllRecover) {
  std::vector<std::pair<Oid, Oid>> committed;
  {
    Database db(WalOptions());
    db.SetSchema(TwoClassSchema());
    ASSERT_TRUE(db.wal_enabled());
    committed = Storm(&db, 8, 16);
    ASSERT_EQ(committed.size(), 8u * 16u);
  }
  Database revived(WalOptions());
  revived.SetSchema(TwoClassSchema());
  ASSERT_TRUE(wal::RecoverDatabase(&revived).ok());
  EXPECT_EQ(revived.object_count(), committed.size() * 2);
  for (const auto& [a, b] : committed) {
    auto ra = revived.PeekObject(a);
    ASSERT_TRUE(ra.ok()) << "oid " << a;
    EXPECT_EQ(ra->orefs[0], b) << "oid " << a;
    EXPECT_TRUE(revived.PeekObject(b).ok()) << "oid " << b;
  }
}

TEST_F(WalConcurrencyTest, CheckpointRacesCommittersAndStillRecovers) {
  // SaveSnapshot refuses while writers hold locks, so the checkpointer
  // spins until it lands between commits; whether each commit falls
  // before or after the watermark, recovery must surface all of them.
  const std::string snap = TempPath("ocb_wal_concurrency_test.snap");
  std::vector<std::pair<Oid, Oid>> committed;
  {
    Database db(WalOptions());
    db.SetSchema(TwoClassSchema());
    std::atomic<bool> done{false};
    std::atomic<int> checkpoints{0};
    std::thread checkpointer([&]() {
      while (!done.load(std::memory_order_relaxed)) {
        if (SaveSnapshot(&db, snap).ok()) {
          checkpoints.fetch_add(1, std::memory_order_relaxed);
        }
        std::this_thread::yield();
      }
    });
    committed = Storm(&db, 6, 12);
    done.store(true, std::memory_order_relaxed);
    checkpointer.join();
    // The racer may never win a quiesce window against a dense storm, so
    // guarantee at least one checkpoint, with a committed tail past it.
    if (checkpoints.load() == 0) {
      ASSERT_TRUE(SaveSnapshot(&db, snap).ok());
    }
    auto session = db.OpenSession();
    auto txn = session.Begin();
    auto a = txn.Create(0);
    auto b = txn.Create(1);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_TRUE(txn.SetReference(*a, 0, *b).ok());
    ASSERT_TRUE(txn.Commit().ok());
    committed.emplace_back(*a, *b);
  }
  Database revived(WalOptions());
  revived.SetSchema(TwoClassSchema());
  ASSERT_TRUE(wal::RecoverDatabase(&revived).ok());
  EXPECT_EQ(revived.object_count(), committed.size() * 2);
  for (const auto& [a, b] : committed) {
    auto ra = revived.PeekObject(a);
    ASSERT_TRUE(ra.ok()) << "oid " << a;
    EXPECT_EQ(ra->orefs[0], b) << "oid " << a;
  }
  std::remove(snap.c_str());
}

TEST_F(WalConcurrencyTest, ShardedConcurrentCommittersAllRecover) {
  // Round-robin creation makes every pair cross-shard, so concurrent
  // committers hammer the 2PC choreography: participant appends, shard
  // forces, and marker appends interleave across threads.
  constexpr uint32_t kShards = 4;
  std::vector<std::pair<Oid, Oid>> committed;
  {
    ShardedDatabase db(WalOptions(), kShards);
    db.SetSchema(TwoClassSchema());
    ASSERT_TRUE(db.wal_enabled());
    committed = Storm(&db, 6, 10);
    ASSERT_EQ(committed.size(), 6u * 10u);
  }
  ShardedDatabase revived(WalOptions(), kShards);
  revived.SetSchema(TwoClassSchema());
  ASSERT_TRUE(wal::RecoverShardedDatabase(&revived).ok());
  EXPECT_EQ(revived.object_count(), committed.size() * 2);
  for (const auto& [a, b] : committed) {
    EXPECT_TRUE(revived.ContainsObject(a)) << "oid " << a;
    EXPECT_TRUE(revived.ContainsObject(b)) << "oid " << b;
  }
}

}  // namespace
}  // namespace ocb
