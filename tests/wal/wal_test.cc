// Tests for the redo WAL's on-disk format: append/scan round trips, the
// torn-tail rule, CRC validation, and checkpoint payload decoding.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "wal/wal_format.h"
#include "wal/wal_reader.h"
#include "wal/wal_writer.h"

namespace ocb {
namespace wal {
namespace {

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

WalRecord CommitRecord(uint64_t txn, uint64_t ts) {
  WalRecord rec;
  rec.type = WalRecordType::kCommit;
  rec.txn_id = txn;
  rec.commit_ts = ts;
  WalOp up;
  up.kind = WalOpKind::kUpsert;
  up.class_id = 3;
  up.oid = 40 + ts;
  up.payload = {1, 2, 3, static_cast<uint8_t>(ts)};
  rec.ops.push_back(up);
  WalOp del;
  del.kind = WalOpKind::kDelete;
  del.class_id = 1;
  del.oid = 7;
  rec.ops.push_back(del);
  return rec;
}

class WalTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = TempPath("ocb_wal_test.wal");
};

TEST_F(WalTest, AppendReadRoundTrip) {
  {
    auto w = WalWriter::Open(path_);
    ASSERT_TRUE(w.ok()) << w.status().message();
    ASSERT_TRUE((*w)->Append(CommitRecord(11, 1)).ok());
    ASSERT_TRUE((*w)->Append(CommitRecord(12, 2)).ok());
    WalRecord marker;
    marker.type = WalRecordType::kCoordMarker;
    marker.txn_id = 12;
    marker.commit_ts = 2;
    ASSERT_TRUE((*w)->Append(marker).ok());
    ASSERT_TRUE((*w)->Force().ok());
    EXPECT_EQ((*w)->appended_records(), 3u);
    EXPECT_EQ((*w)->forces(), 1u);
  }
  auto scan = ReadWal(path_);
  ASSERT_TRUE(scan.ok()) << scan.status().message();
  EXPECT_FALSE(scan->torn_tail);
  ASSERT_EQ(scan->records.size(), 3u);
  const WalRecord& a = scan->records[0];
  EXPECT_EQ(a.type, WalRecordType::kCommit);
  EXPECT_EQ(a.txn_id, 11u);
  EXPECT_EQ(a.commit_ts, 1u);
  ASSERT_EQ(a.ops.size(), 2u);
  EXPECT_EQ(a.ops[0].kind, WalOpKind::kUpsert);
  EXPECT_EQ(a.ops[0].class_id, 3u);
  EXPECT_EQ(a.ops[0].oid, 41u);
  EXPECT_EQ(a.ops[0].payload, (std::vector<uint8_t>{1, 2, 3, 1}));
  EXPECT_EQ(a.ops[1].kind, WalOpKind::kDelete);
  EXPECT_TRUE(a.ops[1].payload.empty());
  const WalRecord& m = scan->records[2];
  EXPECT_EQ(m.type, WalRecordType::kCoordMarker);
  EXPECT_EQ(m.commit_ts, 2u);
  EXPECT_TRUE(m.ops.empty());
}

TEST_F(WalTest, EmptyLogScansToZeroRecords) {
  {
    auto w = WalWriter::Open(path_);
    ASSERT_TRUE(w.ok());
  }
  auto scan = ReadWal(path_);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->records.empty());
  EXPECT_FALSE(scan->torn_tail);
}

TEST_F(WalTest, MissingFileIsNotFound) {
  auto scan = ReadWal(TempPath("ocb_wal_missing.wal"));
  EXPECT_TRUE(scan.status().IsNotFound());
}

TEST_F(WalTest, ReopenAppendsAfterExistingRecords) {
  {
    auto w = WalWriter::Open(path_);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE((*w)->Append(CommitRecord(1, 1)).ok());
    ASSERT_TRUE((*w)->Force().ok());
  }
  {
    auto w = WalWriter::Open(path_);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE((*w)->Append(CommitRecord(2, 2)).ok());
    ASSERT_TRUE((*w)->Force().ok());
  }
  auto scan = ReadWal(path_);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 2u);
  EXPECT_EQ(scan->records[0].txn_id, 1u);
  EXPECT_EQ(scan->records[1].txn_id, 2u);
}

TEST_F(WalTest, TornTailIsDroppedByScanAndTruncatedByOpen) {
  uint64_t valid_end = 0;
  {
    auto w = WalWriter::Open(path_);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE((*w)->Append(CommitRecord(1, 1)).ok());
    ASSERT_TRUE((*w)->Append(CommitRecord(2, 2)).ok());
    ASSERT_TRUE((*w)->Force().ok());
  }
  {
    auto scan = ReadWal(path_);
    ASSERT_TRUE(scan.ok());
    ASSERT_EQ(scan->records.size(), 2u);
    valid_end = scan->valid_end;
  }
  // Crash mid-append: only part of a third record's frame reaches disk.
  {
    std::FILE* f = std::fopen(path_.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const uint8_t torn[7] = {0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02, 0x03};
    ASSERT_EQ(std::fwrite(torn, 1, sizeof(torn), f), sizeof(torn));
    std::fclose(f);
  }
  {
    auto scan = ReadWal(path_);
    ASSERT_TRUE(scan.ok());
    EXPECT_EQ(scan->records.size(), 2u);  // Valid prefix only.
    EXPECT_TRUE(scan->torn_tail);
    EXPECT_EQ(scan->valid_end, valid_end);
  }
  // Open truncates the tail and appends cleanly after the prefix.
  {
    auto w = WalWriter::Open(path_);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE((*w)->Append(CommitRecord(3, 3)).ok());
    ASSERT_TRUE((*w)->Force().ok());
  }
  auto scan = ReadWal(path_);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 3u);
  EXPECT_FALSE(scan->torn_tail);
  EXPECT_EQ(scan->records[2].txn_id, 3u);
}

TEST_F(WalTest, TruncatedFinalRecordIsDropped) {
  // Torn tail variant: the file ends mid-record (short frame), not with
  // garbage — truncate() to a byte inside the last record's body.
  {
    auto w = WalWriter::Open(path_);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE((*w)->Append(CommitRecord(1, 1)).ok());
    ASSERT_TRUE((*w)->Append(CommitRecord(2, 2)).ok());
    ASSERT_TRUE((*w)->Force().ok());
  }
  uint64_t full_end = 0;
  {
    auto scan = ReadWal(path_);
    ASSERT_TRUE(scan.ok());
    full_end = scan->valid_end;
  }
  ASSERT_EQ(truncate(path_.c_str(), static_cast<off_t>(full_end - 3)), 0);
  auto scan = ReadWal(path_);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 1u);
  EXPECT_TRUE(scan->torn_tail);
  EXPECT_EQ(scan->records[0].txn_id, 1u);
}

TEST_F(WalTest, CrcCorruptionStopsTheScanAtTheDamage) {
  {
    auto w = WalWriter::Open(path_);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE((*w)->Append(CommitRecord(1, 1)).ok());
    ASSERT_TRUE((*w)->Append(CommitRecord(2, 2)).ok());
    ASSERT_TRUE((*w)->Force().ok());
  }
  // Flip one byte in the SECOND record's body (well past the first
  // record's frame): the scan keeps record 1, drops record 2.
  uint64_t first_end = 0;
  {
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::vector<WalRecord> one;
    // Scan manually to find the end of the first record: scan the whole
    // file, then recompute the prefix end by rescanning a copy is more
    // work than arithmetic — both records serialize identically-sized
    // bodies, so the first ends halfway through the record area.
    uint64_t end = 0;
    ASSERT_TRUE(ScanWalFile(f, &one, &end).ok());
    std::fclose(f);
    first_end = kWalMagicSize + (end - kWalMagicSize) / 2;
  }
  {
    std::FILE* f = std::fopen(path_.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, static_cast<long>(first_end) + 12, SEEK_SET), 0);
    const int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, -1, SEEK_CUR), 0);
    std::fputc(c ^ 0xFF, f);
    std::fclose(f);
  }
  auto scan = ReadWal(path_);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 1u);
  EXPECT_TRUE(scan->torn_tail);
  EXPECT_EQ(scan->records[0].txn_id, 1u);
}

TEST_F(WalTest, NonWalFileIsCorruptionNeverClobbered) {
  {
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("definitely not a WAL", f);
    std::fclose(f);
  }
  EXPECT_TRUE(WalWriter::Open(path_).status().IsCorruption());
  EXPECT_TRUE(ReadWal(path_).status().IsCorruption());
  // The file content survived the refused open.
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[32] = {};
  ASSERT_GT(std::fread(buf, 1, sizeof(buf), f), 0u);
  std::fclose(f);
  EXPECT_EQ(std::string(buf), "definitely not a WAL");
}

TEST_F(WalTest, CheckpointRecordRoundTrips) {
  const std::string snap = TempPath("ocb_wal_test.snap");
  {
    auto w = WalWriter::Open(path_);
    ASSERT_TRUE(w.ok());
    WalRecord rec;
    rec.type = WalRecordType::kCheckpoint;
    rec.commit_ts = 42;  // Watermark.
    WalOp op;
    op.kind = WalOpKind::kCheckpointInfo;
    op.payload.assign(snap.begin(), snap.end());
    rec.ops.push_back(op);
    ASSERT_TRUE((*w)->Append(rec).ok());
    ASSERT_TRUE((*w)->Force().ok());
  }
  auto scan = ReadWal(path_);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 1u);
  auto cp = DecodeCheckpoint(scan->records[0]);
  ASSERT_TRUE(cp.ok()) << cp.status().message();
  EXPECT_EQ(cp->snapshot_path, snap);
  EXPECT_EQ(cp->watermark_ts, 42u);
  // A commit record is not a checkpoint.
  EXPECT_FALSE(DecodeCheckpoint(CommitRecord(1, 1)).ok());
}

TEST_F(WalTest, ForceIfDirtySkipsCleanLogs) {
  auto w = WalWriter::Open(path_);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE((*w)->ForceIfDirty().ok());
  EXPECT_EQ((*w)->forces(), 0u);  // Clean: no fsync charged.
  ASSERT_TRUE((*w)->Append(CommitRecord(1, 1)).ok());
  ASSERT_TRUE((*w)->ForceIfDirty().ok());
  EXPECT_EQ((*w)->forces(), 1u);
  ASSERT_TRUE((*w)->ForceIfDirty().ok());
  EXPECT_EQ((*w)->forces(), 1u);  // Nothing new since the last force.
}

}  // namespace
}  // namespace wal
}  // namespace ocb
