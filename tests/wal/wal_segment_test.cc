// Tests for WAL segment rotation (StorageOptions::wal_segment_bytes),
// checkpoint-driven segment pruning, and the automatic checkpoint
// scheduler (StorageOptions::checkpoint_interval_commits).

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "engine/session.h"
#include "oodb/database.h"
#include "oodb/snapshot.h"
#include "util/format.h"
#include "wal/recovery.h"
#include "wal/wal_reader.h"
#include "wal/wal_writer.h"

namespace ocb {
namespace wal {
namespace {

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

WalRecord CommitRecord(uint64_t txn, uint64_t ts) {
  WalRecord rec;
  rec.type = WalRecordType::kCommit;
  rec.txn_id = txn;
  rec.commit_ts = ts;
  WalOp up;
  up.kind = WalOpKind::kUpsert;
  up.class_id = 1;
  up.oid = 100 + ts;
  up.payload.assign(32, static_cast<uint8_t>(ts));
  rec.ops.push_back(std::move(up));
  return rec;
}

WalRecord CheckpointRecord(uint64_t ts, const std::string& snap) {
  WalRecord rec;
  rec.type = WalRecordType::kCheckpoint;
  rec.commit_ts = ts;
  WalOp op;
  op.kind = WalOpKind::kCheckpointInfo;
  op.payload.assign(snap.begin(), snap.end());
  rec.ops.push_back(std::move(op));
  return rec;
}

class WalSegmentTest : public ::testing::Test {
 protected:
  void TearDown() override {
    std::remove(path_.c_str());
    for (uint64_t k = 1; k <= 64; ++k) {
      std::remove(WalSegmentPath(path_, k).c_str());
    }
    std::remove((path_ + ".autockpt0").c_str());
    std::remove((path_ + ".autockpt1").c_str());
    std::remove(snap_.c_str());
  }

  std::string path_ = TempPath("ocb_wal_segment_test.wal");
  std::string snap_ = TempPath("ocb_wal_segment_test.snap");
};

TEST_F(WalSegmentTest, RotationSplitsLogAcrossSegments) {
  // Each CommitRecord frame is ~90 bytes; a 256-byte limit forces a
  // rotation every couple of records.
  {
    auto w = WalWriter::Open(path_, /*segment_bytes=*/256);
    ASSERT_TRUE(w.ok()) << w.status().message();
    for (uint64_t i = 1; i <= 10; ++i) {
      ASSERT_TRUE((*w)->Append(CommitRecord(i, i)).ok());
    }
    ASSERT_TRUE((*w)->Force().ok());
    EXPECT_GT((*w)->rotations(), 0u);
    EXPECT_EQ((*w)->segment_index(), (*w)->rotations());
  }
  const std::vector<uint64_t> segments = ListWalSegments(path_);
  ASSERT_GT(segments.size(), 1u);
  EXPECT_EQ(segments.front(), 0u);

  // The base file alone holds only a prefix; the segmented read sees the
  // whole log in append order.
  auto base_only = ReadWal(path_);
  ASSERT_TRUE(base_only.ok());
  EXPECT_LT(base_only->records.size(), 10u);
  auto all = ReadWalSegments(path_);
  ASSERT_TRUE(all.ok()) << all.status().message();
  ASSERT_EQ(all->records.size(), 10u);
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(all->records[i].txn_id, i + 1);
  }
  EXPECT_FALSE(all->torn_tail);
}

TEST_F(WalSegmentTest, ReopenAppendsToHighestSegment) {
  uint64_t index = 0;
  {
    auto w = WalWriter::Open(path_, 256);
    ASSERT_TRUE(w.ok());
    for (uint64_t i = 1; i <= 6; ++i) {
      ASSERT_TRUE((*w)->Append(CommitRecord(i, i)).ok());
    }
    ASSERT_TRUE((*w)->Force().ok());
    index = (*w)->segment_index();
    ASSERT_GT(index, 0u);
  }
  {
    auto w = WalWriter::Open(path_, 256);
    ASSERT_TRUE(w.ok());
    EXPECT_EQ((*w)->segment_index(), index);  // Not a fresh segment 0.
    ASSERT_TRUE((*w)->Append(CommitRecord(7, 7)).ok());
    ASSERT_TRUE((*w)->Force().ok());
  }
  auto all = ReadWalSegments(path_);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->records.size(), 7u);
  EXPECT_EQ(all->records.back().txn_id, 7u);
}

TEST_F(WalSegmentTest, OversizedRecordLandsWholeInOneSegment) {
  auto w = WalWriter::Open(path_, 128);
  ASSERT_TRUE(w.ok());
  WalRecord big = CommitRecord(1, 1);
  big.ops[0].payload.assign(1024, 0xAB);  // Frame far past the limit.
  ASSERT_TRUE((*w)->Append(big).ok());
  ASSERT_TRUE((*w)->Append(CommitRecord(2, 2)).ok());
  ASSERT_TRUE((*w)->Force().ok());
  auto all = ReadWalSegments(path_);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->records.size(), 2u);
  EXPECT_EQ(all->records[0].ops[0].payload.size(), 1024u);
}

TEST_F(WalSegmentTest, TornTailInLastSegmentIsTruncatedOnReopen) {
  {
    auto w = WalWriter::Open(path_, 256);
    ASSERT_TRUE(w.ok());
    for (uint64_t i = 1; i <= 6; ++i) {
      ASSERT_TRUE((*w)->Append(CommitRecord(i, i)).ok());
    }
    ASSERT_TRUE((*w)->Force().ok());
    ASSERT_GT((*w)->segment_index(), 0u);
  }
  // Crash garbage lands at the end of the HIGHEST segment — the only one
  // still open for append.
  const std::string last =
      WalSegmentPath(path_, ListWalSegments(path_).back());
  {
    std::FILE* f = std::fopen(last.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const uint8_t torn[5] = {0xDE, 0xAD, 0xBE, 0xEF, 0x01};
    ASSERT_EQ(std::fwrite(torn, 1, sizeof(torn), f), sizeof(torn));
    std::fclose(f);
  }
  {
    auto all = ReadWalSegments(path_);
    ASSERT_TRUE(all.ok());
    EXPECT_EQ(all->records.size(), 6u);
    EXPECT_TRUE(all->torn_tail);
  }
  {
    auto w = WalWriter::Open(path_, 256);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE((*w)->Append(CommitRecord(7, 7)).ok());
    ASSERT_TRUE((*w)->Force().ok());
  }
  auto all = ReadWalSegments(path_);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->records.size(), 7u);
  EXPECT_FALSE(all->torn_tail);
}

TEST_F(WalSegmentTest, PruneDeletesClosedSegmentsBelowTheWatermark) {
  auto w = WalWriter::Open(path_, 256);
  ASSERT_TRUE(w.ok());
  for (uint64_t i = 1; i <= 12; ++i) {
    ASSERT_TRUE((*w)->Append(CommitRecord(i, i)).ok());
  }
  ASSERT_TRUE((*w)->Force().ok());
  const uint64_t active = (*w)->segment_index();
  ASSERT_GT(active, 1u);

  // Watermark past everything: every closed segment goes; the active one
  // and segment 0 (truncated to its magic) stay on disk.
  uint64_t pruned = 0;
  ASSERT_TRUE((*w)->PruneSegments(/*watermark=*/12, &pruned).ok());
  EXPECT_GT(pruned, 0u);
  const std::vector<uint64_t> left = ListWalSegments(path_);
  ASSERT_EQ(left.size(), 2u);
  EXPECT_EQ(left[0], 0u);       // Truncated, never unlinked.
  EXPECT_EQ(left[1], active);   // Append target untouched.
  auto base = ReadWal(path_);
  ASSERT_TRUE(base.ok());
  EXPECT_TRUE(base->records.empty());  // Magic-only.

  // The surviving records are exactly the active segment's.
  auto all = ReadWalSegments(path_);
  ASSERT_TRUE(all.ok());
  for (const WalRecord& rec : all->records) {
    EXPECT_GT(rec.commit_ts, 0u);
  }
  // And the writer still appends fine afterwards.
  ASSERT_TRUE((*w)->Append(CommitRecord(13, 13)).ok());
  ASSERT_TRUE((*w)->Force().ok());
}

TEST_F(WalSegmentTest, PruneKeepsSegmentsWithRecordsPastTheWatermark) {
  auto w = WalWriter::Open(path_, 256);
  ASSERT_TRUE(w.ok());
  for (uint64_t i = 1; i <= 12; ++i) {
    ASSERT_TRUE((*w)->Append(CommitRecord(i, i)).ok());
  }
  ASSERT_TRUE((*w)->Force().ok());

  // A low watermark: only segments whose records ALL sit at or below it
  // may go; everything later survives in full.
  uint64_t pruned = 0;
  ASSERT_TRUE((*w)->PruneSegments(/*watermark=*/4, &pruned).ok());
  auto all = ReadWalSegments(path_);
  ASSERT_TRUE(all.ok());
  for (uint64_t ts = 5; ts <= 12; ++ts) {
    bool found = false;
    for (const WalRecord& rec : all->records) {
      if (rec.commit_ts == ts) found = true;
    }
    EXPECT_TRUE(found) << "commit ts " << ts << " lost by prune";
  }
}

TEST_F(WalSegmentTest, PruneSparesTheCheckpointRecordItself) {
  auto w = WalWriter::Open(path_, 160);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE((*w)->Append(CommitRecord(1, 1)).ok());
  ASSERT_TRUE((*w)->Append(CommitRecord(2, 2)).ok());
  // The checkpoint at watermark 2: its record must outlive a prune AT
  // that watermark — it carries the snapshot path recovery loads.
  ASSERT_TRUE((*w)->Append(CheckpointRecord(2, snap_)).ok());
  // Push enough records to rotate the checkpoint's segment closed.
  for (uint64_t i = 3; i <= 8; ++i) {
    ASSERT_TRUE((*w)->Append(CommitRecord(i, i)).ok());
  }
  ASSERT_TRUE((*w)->Force().ok());
  ASSERT_TRUE((*w)->PruneSegments(/*watermark=*/2, nullptr).ok());
  auto all = ReadWalSegments(path_);
  ASSERT_TRUE(all.ok());
  bool checkpoint_survives = false;
  for (const WalRecord& rec : all->records) {
    if (rec.type == WalRecordType::kCheckpoint && rec.commit_ts == 2) {
      checkpoint_survives = true;
    }
  }
  EXPECT_TRUE(checkpoint_survives);
}

// --- Through the engine ----------------------------------------------------

Schema TwoClassSchema() {
  Schema schema;
  schema.SetRefTypes(Schema::DefaultTraits(3));
  ClassDescriptor a;
  a.id = 0;
  a.maxnref = 3;
  a.basesize = 40;
  a.instance_size = 40;
  a.tref = {2, 2, 2};
  a.cref = {1, 1, 0};
  ClassDescriptor b;
  b.id = 1;
  b.maxnref = 2;
  b.basesize = 20;
  b.instance_size = 20;
  b.tref = {2, 2};
  b.cref = {0, 0};
  Schema out = std::move(schema);
  EXPECT_TRUE(out.AddClass(std::move(a)).ok());
  EXPECT_TRUE(out.AddClass(std::move(b)).ok());
  return out;
}

class WalSegmentEngineTest : public WalSegmentTest {
 protected:
  StorageOptions SegmentedOptions() {
    StorageOptions opts;
    opts.page_size = 1024;
    opts.buffer_pool_pages = 32;
    opts.wal_path = path_;
    opts.wal_segment_bytes = 512;
    return opts;
  }

  Oid CommitOne(Database* db) {
    auto session = db->OpenSession();
    auto txn = session.Begin();
    auto oid = txn.Create(0);
    EXPECT_TRUE(oid.ok());
    EXPECT_TRUE(txn.Commit().ok());
    return *oid;
  }
};

TEST_F(WalSegmentEngineTest, RecoveryReplaysAcrossSegments) {
  std::vector<Oid> oids;
  {
    Database db(SegmentedOptions());
    db.SetSchema(TwoClassSchema());
    for (int i = 0; i < 24; ++i) oids.push_back(CommitOne(&db));
    ASSERT_GT(db.wal()->rotations(), 0u);  // The log really segmented.
  }
  Database revived(SegmentedOptions());
  revived.SetSchema(TwoClassSchema());
  ASSERT_TRUE(RecoverDatabase(&revived).ok());
  EXPECT_EQ(revived.object_count(), oids.size());
  for (Oid oid : oids) {
    EXPECT_TRUE(revived.PeekObject(oid).ok()) << "oid " << oid;
  }
}

TEST_F(WalSegmentEngineTest, CheckpointPrunesSegmentsAndRecoveryStillWorks) {
  std::vector<Oid> oids;
  size_t segments_before = 0;
  {
    Database db(SegmentedOptions());
    db.SetSchema(TwoClassSchema());
    for (int i = 0; i < 24; ++i) oids.push_back(CommitOne(&db));
    segments_before = ListWalSegments(path_).size();
    ASSERT_GT(segments_before, 1u);
    // SaveSnapshot logs the checkpoint, then prunes the closed segments
    // the snapshot supersedes.
    ASSERT_TRUE(SaveSnapshot(&db, snap_).ok());
    EXPECT_LT(ListWalSegments(path_).size(), segments_before);
    // Post-checkpoint commits land in the surviving tail.
    oids.push_back(CommitOne(&db));
  }
  Database revived(SegmentedOptions());
  revived.SetSchema(TwoClassSchema());
  ASSERT_TRUE(RecoverDatabase(&revived).ok());
  EXPECT_EQ(revived.object_count(), oids.size());
  for (Oid oid : oids) {
    EXPECT_TRUE(revived.PeekObject(oid).ok()) << "oid " << oid;
  }
}

TEST_F(WalSegmentEngineTest, AutoCheckpointFiresEveryInterval) {
  StorageOptions opts = SegmentedOptions();
  opts.checkpoint_interval_commits = 4;
  std::vector<Oid> oids;
  {
    Database db(opts);
    db.SetSchema(TwoClassSchema());
    // Commits arm the scheduler every 4; it runs on its own thread and
    // coalesces arms that pile up while a save is in flight, so keep
    // committing (bounded) until two checkpoints have landed.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(15);
    while (db.checkpoints_taken() < 2 &&
           std::chrono::steady_clock::now() < deadline) {
      oids.push_back(CommitOne(&db));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_GE(db.checkpoints_taken(), 2u);
    // Both alternating snapshot files exist once two checkpoints ran.
    EXPECT_TRUE(std::filesystem::exists(path_ + ".autockpt0"));
    EXPECT_TRUE(std::filesystem::exists(path_ + ".autockpt1"));
  }
  Database revived(opts);
  revived.SetSchema(TwoClassSchema());
  ASSERT_TRUE(RecoverDatabase(&revived).ok());
  EXPECT_EQ(revived.object_count(), oids.size());
  for (Oid oid : oids) {
    EXPECT_TRUE(revived.PeekObject(oid).ok()) << "oid " << oid;
  }
}

TEST_F(WalSegmentEngineTest, AutoCheckpointRefusedWhileLocksHeldThenRetries) {
  StorageOptions opts = SegmentedOptions();
  opts.checkpoint_interval_commits = 1;  // Every commit arms an attempt.
  Database db(opts);
  db.SetSchema(TwoClassSchema());
  auto session = db.OpenSession();
  {
    // An in-flight writer holds an X lock across another session's
    // commit: the armed checkpoint must refuse (SaveSnapshot's torn-
    // database rule), not block or crash.
    auto held = session.Begin();
    ASSERT_TRUE(held.Create(0).ok());
    auto other = db.OpenSession();
    auto txn = other.Begin();
    ASSERT_TRUE(txn.Create(1).ok());
    ASSERT_TRUE(txn.Commit().ok());
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (db.checkpoints_refused() == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_GE(db.checkpoints_refused(), 1u);
    EXPECT_EQ(db.checkpoints_taken(), 0u);
    ASSERT_TRUE(held.Commit().ok());
  }
  // Locks released: the next commit retries and the checkpoint lands.
  auto txn = session.Begin();
  ASSERT_TRUE(txn.Create(0).ok());
  ASSERT_TRUE(txn.Commit().ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (db.checkpoints_taken() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(db.checkpoints_taken(), 1u);
}

}  // namespace
}  // namespace wal
}  // namespace ocb
