// Cross-module integration tests: full generate → workload → recluster →
// re-run pipelines exercising every layer together, plus cross-policy and
// genericity sanity checks.

#include <gtest/gtest.h>

#include "clustering/dfs_placement.h"
#include "clustering/dstc.h"
#include "clustering/greedy_graph.h"
#include "legacy/club.h"
#include "legacy/oo1.h"
#include "ocb/experiment.h"
#include "ocb/generator.h"
#include "ocb/protocol.h"

namespace ocb {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig config;
  config.preset = presets::Default();
  config.preset.database.num_objects = 1200;
  config.preset.database.num_classes = 8;
  config.preset.database.max_nref = 5;
  config.preset.database.seed = 21;
  config.preset.workload.cold_transactions = 50;
  config.preset.workload.hot_transactions = 120;
  config.preset.workload.set_depth = 2;
  config.preset.workload.simple_depth = 2;
  config.preset.workload.hierarchy_depth = 3;
  config.preset.workload.stochastic_depth = 8;
  config.preset.workload.seed = 23;
  config.storage.buffer_pool_pages = 16;
  return config;
}

TEST(IntegrationTest, EveryPolicyCompletesTheFullPipeline) {
  Dstc dstc;
  GreedyGraphPartitioning greedy;
  DfsPlacement dfs;
  NoClustering none;
  std::vector<ClusteringPolicy*> policies = {&dstc, &greedy, &dfs, &none};
  for (ClusteringPolicy* policy : policies) {
    auto result = RunBeforeAfterExperiment(SmallConfig(), policy);
    ASSERT_TRUE(result.ok()) << policy->name() << ": "
                             << result.status().ToString();
    EXPECT_GT(result->before.merged.warm.global.transactions, 0u)
        << policy->name();
    EXPECT_GT(result->ios_before(), 0.0) << policy->name();
    EXPECT_GT(result->ios_after(), 0.0) << policy->name();
  }
}

TEST(IntegrationTest, DatabaseSurvivesReorganizationIntact) {
  ExperimentConfig config = SmallConfig();
  Database db(config.storage);
  ASSERT_TRUE(GenerateDatabase(config.preset.database, &db).ok());

  // Snapshot the logical graph.
  struct Snapshot {
    ClassId class_id;
    std::vector<Oid> orefs;
  };
  std::map<Oid, Snapshot> before;
  for (Oid oid : db.object_store()->LiveOids()) {
    auto obj = db.PeekObject(oid);
    ASSERT_TRUE(obj.ok());
    before[oid] = {obj->class_id, obj->orefs};
  }

  Dstc dstc;
  auto result = RunBeforeAfterOnDatabase(&db, config.preset.workload, &dstc);
  ASSERT_TRUE(result.ok());
  ASSERT_GE(dstc.stats().reorganizations, 1u);

  // The physical layout moved; the logical graph must be identical.
  for (const auto& [oid, snapshot] : before) {
    auto obj = db.PeekObject(oid);
    ASSERT_TRUE(obj.ok());
    EXPECT_EQ(obj->class_id, snapshot.class_id);
    EXPECT_EQ(obj->orefs, snapshot.orefs) << "oid " << oid;
  }
}

TEST(IntegrationTest, DeterministicEndToEnd) {
  // Same seeds, same config => identical headline numbers.
  Dstc dstc1, dstc2;
  auto r1 = RunBeforeAfterExperiment(SmallConfig(), &dstc1);
  auto r2 = RunBeforeAfterExperiment(SmallConfig(), &dstc2);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_DOUBLE_EQ(r1->ios_before(), r2->ios_before());
  EXPECT_DOUBLE_EQ(r1->ios_after(), r2->ios_after());
  EXPECT_EQ(r1->clustering_overhead_io, r2->clustering_overhead_io);
}

TEST(IntegrationTest, OcbAsClubTracksNativeClubShape) {
  // The paper's Table 4 argument in miniature: OCB parameterized per
  // Table 3 must show the same qualitative behaviour (a clustering gain
  // > 1) as the native DSTC-CluB implementation.
  StorageOptions storage;
  storage.page_size = 1024;
  storage.buffer_pool_pages = 16;

  // Native DSTC-CluB.
  ClubOptions club;
  club.oo1.num_parts = 1000;
  club.oo1.ref_zone = 100;
  club.traversal_depth = 4;
  club.warmup_traversals = 60;
  club.measured_traversals = 25;
  Database club_db(storage);
  DstcOptions dstc_options;
  dstc_options.observation_period_transactions = 30;
  Dstc club_dstc(dstc_options);
  auto club_result = RunDstcClub(club, &club_db, &club_dstc);
  ASSERT_TRUE(club_result.ok());

  // OCB tuned as CluB.
  ExperimentConfig ocb_config;
  ocb_config.preset = presets::DstcClubApprox(/*ref_zone=*/100);
  ocb_config.preset.database.num_objects = 1000;
  ocb_config.preset.workload.cold_transactions = 60;
  ocb_config.preset.workload.hot_transactions = 100;
  ocb_config.preset.workload.simple_depth = 4;
  ocb_config.storage = storage;
  Dstc ocb_dstc(dstc_options);
  auto ocb_result = RunBeforeAfterExperiment(ocb_config, &ocb_dstc);
  ASSERT_TRUE(ocb_result.ok());

  EXPECT_GT(club_result->gain_factor(), 1.0);
  EXPECT_GT(ocb_result->gain_factor(), 1.0);
}

TEST(IntegrationTest, BufferSizeSweepIsMonotoneInMisses) {
  // More buffer => fewer (or equal) warm-run transaction I/Os.
  double previous = 1e100;
  for (size_t frames : {8u, 32u, 128u}) {
    ExperimentConfig config = SmallConfig();
    config.storage.buffer_pool_pages = frames;
    Database db(config.storage);
    ASSERT_TRUE(GenerateDatabase(config.preset.database, &db).ok());
    ASSERT_TRUE(db.ColdRestart().ok());
    ProtocolRunner runner(&db, config.preset.workload);
    auto metrics = runner.Run();
    ASSERT_TRUE(metrics.ok());
    const double ios = metrics->warm.mean_ios_per_transaction();
    EXPECT_LE(ios, previous * 1.05 + 1e-9) << frames << " frames";
    previous = ios;
  }
}

TEST(IntegrationTest, MultiClientAgreesWithSingleOnTotals) {
  ExperimentConfig config = SmallConfig();
  config.preset.workload.client_count = 3;
  config.preset.workload.cold_transactions = 20;
  config.preset.workload.hot_transactions = 40;
  Database db(config.storage);
  ASSERT_TRUE(GenerateDatabase(config.preset.database, &db).ok());
  ASSERT_TRUE(db.ColdRestart().ok());
  auto report = RunMultiClient(&db, config.preset.workload);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->merged.cold.global.transactions, 60u);
  EXPECT_EQ(report->merged.warm.global.transactions, 120u);
}

}  // namespace
}  // namespace ocb
