// Unit + property tests for the slotted page.

#include "storage/page.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "util/rng.h"

namespace ocb {
namespace {

constexpr size_t kPageSize = 4096;

std::vector<uint8_t> Bytes(size_t n, uint8_t fill) {
  return std::vector<uint8_t>(n, fill);
}

class PageTest : public ::testing::Test {
 protected:
  PageTest() : buffer_(kPageSize, 0), page_(buffer_.data(), kPageSize) {
    page_.Init(7);
  }
  std::vector<uint8_t> buffer_;
  Page page_;
};

TEST_F(PageTest, InitSetsHeader) {
  EXPECT_EQ(page_.page_id(), 7u);
  EXPECT_EQ(page_.slot_count(), 0u);
  EXPECT_EQ(page_.LiveRecords(), 0u);
  EXPECT_EQ(page_.FreeSpace(),
            kPageSize - sizeof(Page::Header) - sizeof(Page::Slot));
}

TEST_F(PageTest, InsertAndRead) {
  const auto record = Bytes(100, 0xAB);
  auto slot = page_.Insert(record);
  ASSERT_TRUE(slot.ok());
  auto read = page_.Read(*slot);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->size(), 100u);
  EXPECT_EQ((*read)[0], 0xAB);
  EXPECT_EQ(page_.LiveRecords(), 1u);
  EXPECT_EQ(page_.LiveBytes(), 100u);
}

TEST_F(PageTest, ReadInvalidSlotFails) {
  EXPECT_TRUE(page_.Read(0).status().IsNotFound());
  auto slot = page_.Insert(Bytes(10, 1));
  ASSERT_TRUE(slot.ok());
  EXPECT_TRUE(page_.Read(99).status().IsNotFound());
}

TEST_F(PageTest, EraseFreesSlotForReuse) {
  auto s0 = page_.Insert(Bytes(10, 1));
  auto s1 = page_.Insert(Bytes(10, 2));
  ASSERT_TRUE(s0.ok() && s1.ok());
  ASSERT_TRUE(page_.Erase(*s0).ok());
  EXPECT_TRUE(page_.Read(*s0).status().IsNotFound());
  EXPECT_TRUE(page_.Erase(*s0).IsNotFound());  // Double erase.
  auto s2 = page_.Insert(Bytes(10, 3));
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s2, *s0);  // Freed slot id reused.
  EXPECT_EQ(page_.slot_count(), 2u);
}

TEST_F(PageTest, ZeroLengthRecord) {
  auto slot = page_.Insert(std::span<const uint8_t>());
  ASSERT_TRUE(slot.ok());
  auto read = page_.Read(*slot);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->size(), 0u);
}

TEST_F(PageTest, OversizedRecordRejected) {
  auto result = page_.Insert(Bytes(kPageSize, 1));
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST_F(PageTest, FillsUntilNoSpace) {
  int inserted = 0;
  while (true) {
    auto slot = page_.Insert(Bytes(100, 0x55));
    if (!slot.ok()) {
      EXPECT_TRUE(slot.status().IsNoSpace());
      break;
    }
    ++inserted;
  }
  // 100-byte records + 4-byte slots into a 4084-byte payload area: 39 fit.
  EXPECT_EQ(inserted, 39);
  EXPECT_FALSE(page_.CanInsert(100));
  EXPECT_TRUE(page_.CanInsert(page_.FreeSpace()));
}

TEST_F(PageTest, CompactionReclaimsHoles) {
  std::vector<SlotId> slots;
  for (int i = 0; i < 30; ++i) {
    auto s = page_.Insert(Bytes(100, static_cast<uint8_t>(i)));
    ASSERT_TRUE(s.ok());
    slots.push_back(*s);
  }
  // Punch holes in every other record.
  for (size_t i = 0; i < slots.size(); i += 2) {
    ASSERT_TRUE(page_.Erase(slots[i]).ok());
  }
  // A large record only fits after compaction merges the holes.
  auto big = page_.Insert(Bytes(1200, 0xEE));
  ASSERT_TRUE(big.ok());
  // Survivors keep their contents.
  for (size_t i = 1; i < slots.size(); i += 2) {
    auto read = page_.Read(slots[i]);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ((*read)[0], static_cast<uint8_t>(i));
    EXPECT_EQ(read->size(), 100u);
  }
}

TEST_F(PageTest, UpdateShrinkInPlace) {
  auto slot = page_.Insert(Bytes(100, 1));
  ASSERT_TRUE(slot.ok());
  ASSERT_TRUE(page_.Update(*slot, Bytes(40, 2)).ok());
  auto read = page_.Read(*slot);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->size(), 40u);
  EXPECT_EQ((*read)[0], 2);
}

TEST_F(PageTest, UpdateGrow) {
  auto slot = page_.Insert(Bytes(100, 1));
  auto other = page_.Insert(Bytes(100, 9));
  ASSERT_TRUE(slot.ok() && other.ok());
  ASSERT_TRUE(page_.Update(*slot, Bytes(500, 3)).ok());
  auto read = page_.Read(*slot);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->size(), 500u);
  EXPECT_EQ((*read)[0], 3);
  // Unrelated record untouched.
  auto other_read = page_.Read(*other);
  ASSERT_TRUE(other_read.ok());
  EXPECT_EQ((*other_read)[0], 9);
}

TEST_F(PageTest, UpdateGrowBeyondCapacityRollsBack) {
  auto slot = page_.Insert(Bytes(100, 1));
  ASSERT_TRUE(slot.ok());
  Status st = page_.Update(*slot, Bytes(kPageSize, 2));
  EXPECT_TRUE(st.IsNoSpace());
  auto read = page_.Read(*slot);  // Old record still intact.
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->size(), 100u);
  EXPECT_EQ((*read)[0], 1);
}

// Property test: a long random sequence of insert/erase/update keeps every
// live record's bytes intact, across several page sizes and seeds.
struct FuzzCase {
  size_t page_size;
  uint64_t seed;
};

class PageFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(PageFuzz, RandomOperationsPreserveRecords) {
  const auto [page_size, seed] = GetParam();
  std::vector<uint8_t> buffer(page_size, 0);
  Page page(buffer.data(), page_size);
  page.Init(1);
  LewisPayneRng rng(seed);
  std::map<SlotId, std::vector<uint8_t>> expected;

  for (int op = 0; op < 2000; ++op) {
    const int kind = static_cast<int>(rng.UniformInt(0, 2));
    if (kind == 0) {  // Insert.
      const size_t len = static_cast<size_t>(rng.UniformInt(0, 300));
      std::vector<uint8_t> record(len);
      for (auto& b : record) {
        b = static_cast<uint8_t>(rng.UniformInt(0, 255));
      }
      auto slot = page.Insert(record);
      if (slot.ok()) {
        expected[*slot] = std::move(record);
      } else {
        ASSERT_TRUE(slot.status().IsNoSpace());
      }
    } else if (kind == 1 && !expected.empty()) {  // Erase.
      auto it = expected.begin();
      std::advance(it, rng.UniformInt(
                           0, static_cast<int64_t>(expected.size()) - 1));
      ASSERT_TRUE(page.Erase(it->first).ok());
      expected.erase(it);
    } else if (!expected.empty()) {  // Update.
      auto it = expected.begin();
      std::advance(it, rng.UniformInt(
                           0, static_cast<int64_t>(expected.size()) - 1));
      const size_t len = static_cast<size_t>(rng.UniformInt(0, 300));
      std::vector<uint8_t> record(len);
      for (auto& b : record) {
        b = static_cast<uint8_t>(rng.UniformInt(0, 255));
      }
      Status st = page.Update(it->first, record);
      if (st.ok()) {
        it->second = std::move(record);
      } else {
        ASSERT_TRUE(st.IsNoSpace());
      }
    }
    // Invariants after every operation.
    ASSERT_EQ(page.LiveRecords(), expected.size());
    size_t live_bytes = 0;
    for (const auto& [slot, record] : expected) live_bytes += record.size();
    ASSERT_EQ(page.LiveBytes(), live_bytes);
  }
  // Full verification of every surviving record.
  for (const auto& [slot, record] : expected) {
    auto read = page.Read(slot);
    ASSERT_TRUE(read.ok());
    ASSERT_EQ(std::vector<uint8_t>(read->begin(), read->end()), record);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, PageFuzz,
    ::testing::Values(FuzzCase{512, 1}, FuzzCase{512, 2},
                      FuzzCase{4096, 3}, FuzzCase{4096, 4},
                      FuzzCase{4096, 5}, FuzzCase{16384, 6}));

}  // namespace
}  // namespace ocb
