// Tests for the asynchronous I/O path: DiskSim issue/await, overlapped
// simulated-time accounting, BufferPool StartFetch/Await/FetchMany, and
// the background write-back queue (drain points + eviction races).
//
// Carries the `concurrency` label: the issue/await handoff, the batch
// prefetch release protocol and the write-back queue are exactly the
// races TSan should chew on.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/disk_sim.h"
#include "storage/io_backend.h"
#include "util/sim_clock.h"

namespace ocb {
namespace {

StorageOptions AsyncOptions(size_t frames, size_t workers) {
  StorageOptions opts;
  opts.page_size = 512;
  opts.buffer_pool_pages = frames;
  opts.io_workers = workers;
  return opts;
}

// --- DiskSim issue/await -------------------------------------------------

TEST(DiskSimAsyncTest, StartReadAwaitRoundTrips) {
  StorageOptions opts = AsyncOptions(4, 2);
  DiskSim disk(opts);
  ASSERT_TRUE(disk.async_enabled());
  const PageId id = disk.AllocatePage();
  std::vector<uint8_t> image(opts.page_size, 0xAB);
  ASSERT_TRUE(disk.WritePage(id, image.data()).ok());

  std::vector<uint8_t> out(opts.page_size, 0);
  IoTicket ticket = disk.StartRead(id, out.data());
  ASSERT_TRUE(ticket.valid());
  ASSERT_TRUE(disk.Await(ticket).ok());
  EXPECT_FALSE(ticket.valid());  // Consumed.
  EXPECT_EQ(std::memcmp(out.data(), image.data(), opts.page_size), 0);
}

TEST(DiskSimAsyncTest, UnallocatedPageFailsAtIssue) {
  StorageOptions opts = AsyncOptions(4, 2);
  DiskSim disk(opts);
  std::vector<uint8_t> out(opts.page_size, 0);
  IoTicket ticket = disk.StartRead(/*page_id=*/99, out.data());
  EXPECT_FALSE(disk.Await(ticket).ok());
}

TEST(DiskSimAsyncTest, AbandonedTicketIsAwaitedByDestructor) {
  StorageOptions opts = AsyncOptions(4, 2);
  DiskSim disk(opts);
  const PageId id = disk.AllocatePage();
  std::vector<uint8_t> out(opts.page_size, 0);
  {
    IoTicket ticket = disk.StartRead(id, out.data());
    // Dropped unawaited: the destructor must block until the worker has
    // finished writing through `out` (ASan/TSan would flag a leak or a
    // use-after-scope otherwise).
  }
  EXPECT_EQ(disk.TotalCounters().reads, 1u);
}

// Overlap accounting: N reads issued before any await all carry the same
// simulated completion instant, so the batch advances the clock by exactly
// ONE device latency — while serial_io_nanos still accumulates all N.
TEST(DiskSimAsyncTest, BatchedReadsChargeOverlappedSimulatedTime) {
  StorageOptions opts = AsyncOptions(4, 2);
  opts.read_latency_nanos = 1'000'000;  // 1 ms simulated.
  SimClock clock;
  DiskSim disk(opts, &clock);
  std::vector<PageId> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(disk.AllocatePage());

  std::vector<std::vector<uint8_t>> outs(4,
                                         std::vector<uint8_t>(opts.page_size));
  std::vector<IoTicket> tickets;
  for (int i = 0; i < 4; ++i) {
    tickets.push_back(disk.StartRead(ids[i], outs[i].data()));
  }
  for (IoTicket& t : tickets) ASSERT_TRUE(disk.Await(t).ok());

  EXPECT_EQ(clock.now_nanos(), opts.read_latency_nanos);
  EXPECT_EQ(disk.serial_io_nanos(), 4 * opts.read_latency_nanos);
  EXPECT_EQ(disk.charged_io_nanos(), opts.read_latency_nanos);
}

// Dependent (awaited-before-next-issue) reads accumulate serially: the
// async path must not under-charge a chain that has no overlap to exploit.
TEST(DiskSimAsyncTest, DependentReadsChargeSerialSimulatedTime) {
  StorageOptions opts = AsyncOptions(4, 2);
  opts.read_latency_nanos = 1'000'000;
  SimClock clock;
  DiskSim disk(opts, &clock);
  std::vector<uint8_t> out(opts.page_size);
  for (int i = 0; i < 3; ++i) {
    const PageId id = disk.AllocatePage();
    IoTicket t = disk.StartRead(id, out.data());
    ASSERT_TRUE(disk.Await(t).ok());
  }
  EXPECT_EQ(clock.now_nanos(), 3 * opts.read_latency_nanos);
  EXPECT_EQ(disk.charged_io_nanos(), 3 * opts.read_latency_nanos);
}

// The satellite bugfix: blocking wrappers issued from concurrent threads
// must ALSO charge per-request issue→complete intervals, so two overlapped
// blocking reads advance the clock by less than their sum (they used to
// serialize 2x unconditionally via Advance()).
TEST(DiskSimAsyncTest, ConcurrentBlockingReadsOverlapSimulatedTime) {
  StorageOptions opts = AsyncOptions(4, 0);  // Inline mode: no workers.
  opts.read_latency_nanos = 1'000'000;
  SimClock clock;
  DiskSim disk(opts, &clock);
  const PageId a = disk.AllocatePage();
  const PageId b = disk.AllocatePage();

  // Both threads read the issue instant before either awaits, modeling
  // two clients whose I/O genuinely overlaps.
  std::atomic<int> at_gate{0};
  auto reader = [&](PageId id) {
    std::vector<uint8_t> out(opts.page_size);
    at_gate.fetch_add(1);
    while (at_gate.load() < 2) std::this_thread::yield();
    ASSERT_TRUE(disk.ReadPage(id, out.data()).ok());
  };
  std::thread t1(reader, a);
  std::thread t2(reader, b);
  t1.join();
  t2.join();

  // AdvanceTo is a max, not a sum: the clock lands within [1x, 2x] of the
  // latency and strictly below the serialized 2x only when the issues
  // actually interleaved — which the gate forces.
  EXPECT_GE(clock.now_nanos(), opts.read_latency_nanos);
  EXPECT_LE(clock.now_nanos(), 2 * opts.read_latency_nanos);
  EXPECT_EQ(clock.now_nanos(), disk.charged_io_nanos());
}

// Wall-clock mode: four 20 ms reads issued before any await must finish in
// well under the 80 ms a serial execution needs.
TEST(DiskSimAsyncTest, WallClockBatchOverlapsRealTime) {
  StorageOptions opts = AsyncOptions(4, 4);
  opts.wall_clock_io = true;
  opts.read_latency_nanos = 20'000'000;  // 20 ms real sleep per read.
  DiskSim disk(opts);
  std::vector<PageId> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(disk.AllocatePage());
  std::vector<std::vector<uint8_t>> outs(4,
                                         std::vector<uint8_t>(opts.page_size));

  const auto start = std::chrono::steady_clock::now();
  std::vector<IoTicket> tickets;
  for (int i = 0; i < 4; ++i) {
    tickets.push_back(disk.StartRead(ids[i], outs[i].data()));
  }
  for (IoTicket& t : tickets) ASSERT_TRUE(disk.Await(t).ok());
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_GE(elapsed, 18);  // At least one device latency really passed.
  EXPECT_LT(elapsed, 60);  // Serial would be >= 80 ms; generous CI margin.
}

// --- BufferPool issue/await ----------------------------------------------

// Creates `count` pages, each carrying one record whose bytes encode the
// page's index, flushes, and cools the cache. Returns the page ids.
std::vector<PageId> BuildMarkedPages(BufferPool* pool, int count) {
  std::vector<PageId> ids;
  for (int i = 0; i < count; ++i) {
    PageId id = kInvalidPageId;
    auto h = pool->NewPage(&id);
    EXPECT_TRUE(h.ok());
    std::vector<uint8_t> marker(16, static_cast<uint8_t>(i + 1));
    EXPECT_TRUE(h->page().Insert(marker).ok());
    h->MarkDirty();
    ids.push_back(id);
  }
  EXPECT_TRUE(pool->FlushAll().ok());
  EXPECT_TRUE(pool->InvalidateAll().ok());
  return ids;
}

void ExpectMarker(PageHandle* h, int index) {
  auto rec = h->page().Read(0);
  ASSERT_TRUE(rec.ok());
  ASSERT_EQ(rec.value().size(), 16u);
  EXPECT_EQ(rec.value()[0], static_cast<uint8_t>(index + 1));
}

TEST(BufferPoolAsyncTest, StartFetchAwaitMissAndHit) {
  StorageOptions opts = AsyncOptions(8, 2);
  DiskSim disk(opts);
  BufferPool pool(&disk, opts);
  const std::vector<PageId> ids = BuildMarkedPages(&pool, 2);

  {
    // Miss path.
    PendingFetch f = pool.StartFetch(ids[0], LatchMode::kShared);
    ASSERT_TRUE(f.pending());
    auto h = pool.Await(std::move(f));
    ASSERT_TRUE(h.ok());
    ExpectMarker(&h.value(), 0);
  }
  {
    // Hit path (now resident).
    PendingFetch f = pool.StartFetch(ids[0], LatchMode::kExclusive);
    ASSERT_TRUE(f.pending());
    auto h = pool.Await(std::move(f));
    ASSERT_TRUE(h.ok());
    ExpectMarker(&h.value(), 0);
  }
  EXPECT_EQ(pool.stats().misses, 1u);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.pinned_frames(), 0u);
}

TEST(BufferPoolAsyncTest, StartFetchFailsCleanlyWhenAllFramesPinned) {
  StorageOptions opts = AsyncOptions(2, 2);
  DiskSim disk(opts);
  BufferPool pool(&disk, opts);
  PageId a = kInvalidPageId;
  PageId b = kInvalidPageId;
  auto ha = pool.NewPage(&a);
  auto hb = pool.NewPage(&b);
  ASSERT_TRUE(ha.ok());
  ASSERT_TRUE(hb.ok());
  const PageId c = disk.AllocatePage();

  PendingFetch f = pool.StartFetch(c);
  EXPECT_FALSE(f.pending());
  EXPECT_FALSE(f.issue_status().ok());
  auto h = pool.Await(std::move(f));
  EXPECT_FALSE(h.ok());
}

TEST(BufferPoolAsyncTest, AbandonedPendingFetchReleasesThePage) {
  StorageOptions opts = AsyncOptions(8, 2);
  DiskSim disk(opts);
  BufferPool pool(&disk, opts);
  const std::vector<PageId> ids = BuildMarkedPages(&pool, 1);
  {
    PendingFetch f = pool.StartFetch(ids[0]);
    ASSERT_TRUE(f.pending());
    // Dropped unawaited: the dtor must finish the read and unpin.
  }
  EXPECT_EQ(pool.pinned_frames(), 0u);
  auto h = pool.FetchPage(ids[0], LatchMode::kShared);
  ASSERT_TRUE(h.ok());  // Frame stayed installed (the read succeeded).
  EXPECT_EQ(pool.stats().hits, 1u);
}

// FetchMany must be result-equivalent to N sequential FetchPage calls:
// same bytes afterwards, same miss/read counts — just issued as a batch.
TEST(BufferPoolAsyncTest, FetchManyMatchesSequentialFetches) {
  constexpr int kPages = 12;
  StorageOptions opts = AsyncOptions(32, 4);
  DiskSim disk(opts);
  BufferPool pool(&disk, opts);
  const std::vector<PageId> ids = BuildMarkedPages(&pool, kPages);

  const uint64_t reads_before = disk.TotalCounters().reads;
  // Duplicates must dedupe, order must not matter.
  std::vector<PageId> request(ids.rbegin(), ids.rend());
  request.push_back(ids[0]);
  ASSERT_TRUE(pool.FetchMany(request).ok());
  EXPECT_EQ(disk.TotalCounters().reads - reads_before,
            static_cast<uint64_t>(kPages));
  EXPECT_EQ(pool.stats().misses, static_cast<uint64_t>(kPages));
  EXPECT_EQ(pool.pinned_frames(), 0u);  // Prefetch leaves nothing pinned.

  // Every page is now a hit with the exact bytes a blocking fetch yields.
  for (int i = 0; i < kPages; ++i) {
    auto h = pool.FetchPage(ids[i], LatchMode::kShared);
    ASSERT_TRUE(h.ok());
    ExpectMarker(&h.value(), i);
  }
  EXPECT_EQ(disk.TotalCounters().reads - reads_before,
            static_cast<uint64_t>(kPages));  // All hits: no new reads.
  EXPECT_EQ(pool.stats().hits, static_cast<uint64_t>(kPages));
}

// A prefetch batch larger than the pool must still succeed: the batch is
// chunked so its own pins never hold every frame of a stripe hostage
// (a traversal frontier can easily outnumber the frames).
TEST(BufferPoolAsyncTest, FetchManyLargerThanThePoolSucceeds) {
  constexpr int kPages = 24;
  StorageOptions opts = AsyncOptions(8, 2);  // 8 frames, single stripe.
  DiskSim disk(opts);
  BufferPool pool(&disk, opts);
  const std::vector<PageId> ids = BuildMarkedPages(&pool, kPages);

  ASSERT_TRUE(pool.FetchMany(ids).ok());
  EXPECT_EQ(pool.pinned_frames(), 0u);
  for (int i = 0; i < kPages; ++i) {
    auto h = pool.FetchPage(ids[i], LatchMode::kShared);
    ASSERT_TRUE(h.ok());
    ExpectMarker(&h.value(), i);
  }
}

// Prefetch is advisory: when held pins leave no frame for a miss, the
// batch skips those pages instead of failing the caller's transaction —
// the later blocking read fetches them one at a time.
TEST(BufferPoolAsyncTest, FetchManyToleratesPinPressure) {
  constexpr int kPages = 8;
  StorageOptions opts = AsyncOptions(4, 2);
  DiskSim disk(opts);
  BufferPool pool(&disk, opts);
  const std::vector<PageId> ids = BuildMarkedPages(&pool, kPages);

  {
    // Hold all but one frame pinned while the batch runs.
    auto a = pool.FetchPage(ids[0], LatchMode::kShared);
    auto b = pool.FetchPage(ids[1], LatchMode::kShared);
    auto c = pool.FetchPage(ids[2], LatchMode::kShared);
    ASSERT_TRUE(a.ok() && b.ok() && c.ok());
    EXPECT_TRUE(pool.FetchMany(ids).ok());
  }
  EXPECT_EQ(pool.pinned_frames(), 0u);
  for (int i = 0; i < kPages; ++i) {
    auto h = pool.FetchPage(ids[i], LatchMode::kShared);
    ASSERT_TRUE(h.ok());
    ExpectMarker(&h.value(), i);
  }
}

// A batch of misses advances the simulated clock by ONE latency: the whole
// point of issuing every miss before awaiting any.
TEST(BufferPoolAsyncTest, FetchManyOverlapsSimulatedTime) {
  constexpr int kPages = 8;
  StorageOptions opts = AsyncOptions(32, 4);
  opts.read_latency_nanos = 1'000'000;
  opts.write_latency_nanos = 0;  // Keep the build phase off the clock.
  SimClock clock;
  DiskSim disk(opts, &clock);
  BufferPool pool(&disk, opts);
  const std::vector<PageId> ids = BuildMarkedPages(&pool, kPages);

  const uint64_t before = clock.now_nanos();
  ASSERT_TRUE(pool.FetchMany(ids).ok());
  EXPECT_EQ(clock.now_nanos() - before, opts.read_latency_nanos);
}

// --- Background write-back -----------------------------------------------

TEST(BufferPoolAsyncTest, FlushAllDrainsTheWritebackQueue) {
  StorageOptions opts = AsyncOptions(2, 2);
  opts.wall_clock_io = true;
  opts.write_latency_nanos = 5'000'000;  // 5 ms: keep write-backs in flight.
  DiskSim disk(opts);
  BufferPool pool(&disk, opts);

  // Dirty pages beyond capacity force dirty evictions onto the queue.
  std::vector<PageId> ids;
  for (int i = 0; i < 6; ++i) {
    PageId id = kInvalidPageId;
    auto h = pool.NewPage(&id);
    ASSERT_TRUE(h.ok());
    std::vector<uint8_t> marker(16, static_cast<uint8_t>(i + 1));
    ASSERT_TRUE(h->page().Insert(marker).ok());
    h->MarkDirty();
    ids.push_back(id);
  }
  EXPECT_GT(pool.stats().dirty_writebacks, 0u);
  EXPECT_GT(pool.writeback_peak_depth(), 0u);

  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ(pool.pending_writebacks(), 0u);

  // Every marker must have reached the disk: cold-start and re-read.
  ASSERT_TRUE(pool.InvalidateAll().ok());
  EXPECT_EQ(pool.pending_writebacks(), 0u);
  for (int i = 0; i < 6; ++i) {
    auto h = pool.FetchPage(ids[i], LatchMode::kShared);
    ASSERT_TRUE(h.ok());
    ExpectMarker(&h.value(), i);
  }
}

TEST(BufferPoolAsyncTest, QuiesceDrainsTheWritebackQueue) {
  StorageOptions opts = AsyncOptions(2, 2);
  opts.wall_clock_io = true;
  opts.write_latency_nanos = 5'000'000;
  DiskSim disk(opts);
  BufferPool pool(&disk, opts);
  for (int i = 0; i < 5; ++i) {
    PageId id = kInvalidPageId;
    auto h = pool.NewPage(&id);
    ASSERT_TRUE(h.ok());
    h->MarkDirty();
  }
  pool.BeginQuiesce();
  EXPECT_EQ(pool.pending_writebacks(), 0u);
  pool.EndQuiesce();
}

// A miss on a page whose write-back is still in flight must await the
// write before re-reading — otherwise it reads stale bytes.
TEST(BufferPoolAsyncTest, RefetchDuringPendingWritebackSeesNewBytes) {
  StorageOptions opts = AsyncOptions(2, 2);
  opts.wall_clock_io = true;
  opts.write_latency_nanos = 20'000'000;  // 20 ms: a real race window.
  DiskSim disk(opts);
  BufferPool pool(&disk, opts);

  PageId victim = kInvalidPageId;
  {
    auto h = pool.NewPage(&victim);
    ASSERT_TRUE(h.ok());
    std::vector<uint8_t> marker(16, 0x5A);
    ASSERT_TRUE(h->page().Insert(marker).ok());
    h->MarkDirty();
  }
  // Two more dirty pages evict `victim`; its write-back is now in flight.
  for (int i = 0; i < 2; ++i) {
    PageId id = kInvalidPageId;
    auto h = pool.NewPage(&id);
    ASSERT_TRUE(h.ok());
    h->MarkDirty();
  }
  // Immediate re-fetch: must settle the pending write first.
  auto h = pool.FetchPage(victim, LatchMode::kShared);
  ASSERT_TRUE(h.ok());
  auto rec = h->page().Read(0);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value()[0], 0x5A);
}

// --- Races (the TSan meat) -----------------------------------------------

// Concurrent fetchers, prefetchers and dirty writers over a pool far
// smaller than the page set: every interleaving of eviction-during-
// pending-fetch and write-back settling gets exercised.
TEST(BufferPoolAsyncConcurrencyTest, MixedFetchPrefetchEvictStorm) {
  constexpr int kPages = 48;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 400;
  StorageOptions opts = AsyncOptions(8, 2);
  opts.latch_stripes = 2;
  DiskSim disk(opts);
  BufferPool pool(&disk, opts);
  const std::vector<PageId> ids = BuildMarkedPages(&pool, kPages);

  std::atomic<bool> failed{false};
  auto worker = [&](unsigned seed) {
    uint64_t state = seed * 2654435761u + 1;
    auto next = [&state]() {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      return static_cast<uint32_t>(state >> 33);
    };
    for (int op = 0; op < kOpsPerThread && !failed.load(); ++op) {
      const uint32_t dice = next() % 10;
      if (dice < 6) {
        // Plain read with integrity check. Transient frame exhaustion
        // (NoSpace: concurrent prefetch batches pin several frames at
        // once) is the pool's documented all-pinned answer, not a bug.
        const int idx = static_cast<int>(next() % kPages);
        auto h = pool.FetchPage(ids[idx], LatchMode::kShared);
        if (!h.ok()) {
          if (!h.status().IsNoSpace()) failed.store(true);
          continue;
        }
        auto rec = h->page().Read(0);
        if (!rec.ok() || rec.value()[0] != static_cast<uint8_t>(idx + 1)) {
          failed.store(true);
          break;
        }
      } else if (dice < 8) {
        // Batch prefetch of a random window.
        const int base = static_cast<int>(next() % (kPages - 4));
        std::vector<PageId> batch(ids.begin() + base, ids.begin() + base + 4);
        (void)pool.FetchMany(batch);
      } else {
        // Dirty write: rewrite the marker with the same value so readers
        // stay consistent, but the frame goes through dirty eviction and
        // the async write-back queue.
        const int idx = static_cast<int>(next() % kPages);
        auto h = pool.FetchPage(ids[idx], LatchMode::kExclusive);
        if (!h.ok()) {
          if (!h.status().IsNoSpace()) failed.store(true);
          continue;
        }
        std::vector<uint8_t> marker(16, static_cast<uint8_t>(idx + 1));
        if (!h->page().Update(0, marker).ok()) {
          failed.store(true);
          break;
        }
        h->MarkDirty();
      }
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t + 1);
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());

  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ(pool.pending_writebacks(), 0u);
  EXPECT_EQ(pool.pinned_frames(), 0u);

  // Post-storm integrity: every page still carries its marker.
  ASSERT_TRUE(pool.InvalidateAll().ok());
  for (int i = 0; i < kPages; ++i) {
    auto h = pool.FetchPage(ids[i], LatchMode::kShared);
    ASSERT_TRUE(h.ok());
    ExpectMarker(&h.value(), i);
  }
}

}  // namespace
}  // namespace ocb
