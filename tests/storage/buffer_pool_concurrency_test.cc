// Multi-threaded buffer-pool tests for the striped, page-latched design:
// concurrent fetch/dirty/evict traffic across stripes, pin-blocks-eviction
// under pressure, shared/exclusive latch semantics, and the quiesce gate.
// Carries the `concurrency` ctest label, so CI re-runs it under TSan; every
// test must also hold at OCB_LATCH_STRIPES=1 (the degenerate single-stripe
// build) — correctness may not depend on striping.

#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace ocb {
namespace {

StorageOptions PoolOptions(size_t frames, size_t stripes,
                           size_t page_size = 512) {
  StorageOptions opts;
  opts.page_size = page_size;
  opts.buffer_pool_pages = frames;
  opts.latch_stripes = stripes;
  return opts;
}

// Creates `count` pages, each holding one `record_size`-byte record filled
// with a per-page marker byte; returns the page ids.
std::vector<PageId> SeedPages(BufferPool* pool, size_t count,
                              size_t record_size) {
  std::vector<PageId> pages;
  for (size_t i = 0; i < count; ++i) {
    PageId id = kInvalidPageId;
    auto handle = pool->NewPage(&id);
    EXPECT_TRUE(handle.ok());
    Page page = handle->page();
    const uint8_t marker = static_cast<uint8_t>(id * 7 + 1);
    auto slot = page.Insert(std::vector<uint8_t>(record_size, marker));
    EXPECT_TRUE(slot.ok());
    handle->MarkDirty();
    pages.push_back(id);
  }
  return pages;
}

// A record must always read as `size` identical bytes: a torn read (latch
// bug) or a lost/garbled write shows up as a mixed pattern.
bool RecordUniform(const Page& page, SlotId slot, size_t size) {
  auto record = page.Read(slot);
  if (!record.ok() || record->size() != size) return false;
  for (uint8_t b : *record) {
    if (b != (*record)[0]) return false;
  }
  return true;
}

TEST(BufferPoolConcurrencyTest, StripesHonorOptionsAndBuildCap) {
  DiskSim disk(PoolOptions(32, 4));
  BufferPool pool(&disk, PoolOptions(32, 4));
#ifdef OCB_LATCH_STRIPES
  EXPECT_EQ(pool.latch_stripes(),
            std::min<size_t>(4, OCB_LATCH_STRIPES));
#else
  EXPECT_EQ(pool.latch_stripes(), 4u);
#endif
  // Auto mode: small pools stay single-striped (seed-exact LRU).
  DiskSim small_disk(PoolOptions(8, 0));
  BufferPool small_pool(&small_disk, PoolOptions(8, 0));
  EXPECT_EQ(small_pool.latch_stripes(), 1u);
}

TEST(BufferPoolConcurrencyTest, ConcurrentFetchDirtyEvictAcrossStripes) {
  // 64 pages over 32 frames: every thread's working set overflows the
  // pool, so hits, misses, evictions and dirty writebacks all interleave
  // across the stripes.
  const StorageOptions opts = PoolOptions(32, 4);
  DiskSim disk(opts);
  BufferPool pool(&disk, opts);
  constexpr size_t kRecordSize = 64;
  const std::vector<PageId> pages = SeedPages(&pool, 64, kRecordSize);
  ASSERT_TRUE(pool.FlushAll().ok());

  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t]() {
      uint64_t state = 0x9E3779B97F4A7C15ULL * (t + 1);
      auto next = [&state]() {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        return state >> 33;
      };
      for (int i = 0; i < 400 && !failed.load(); ++i) {
        const PageId page_id = pages[next() % pages.size()];
        if (next() % 4 == 0) {
          // Mutator: rewrite the record with a fresh uniform marker.
          auto handle = pool.FetchPage(page_id, LatchMode::kExclusive);
          if (!handle.ok()) continue;  // All frames pinned momentarily.
          Page page = handle->page();
          const uint8_t marker = static_cast<uint8_t>(next() | 1);
          if (!page.Update(0, std::vector<uint8_t>(kRecordSize, marker))
                   .ok()) {
            failed = true;
          }
          handle->MarkDirty();
        } else {
          auto handle = pool.FetchPage(page_id, LatchMode::kShared);
          if (!handle.ok()) continue;
          if (!RecordUniform(handle->page(), 0, kRecordSize)) failed = true;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_FALSE(failed) << "torn or lost record under concurrent traffic";
  EXPECT_GT(pool.stats().evictions.load(), 0u);
  EXPECT_GT(pool.stats().dirty_writebacks.load(), 0u);
  // Every page must still be intact after the storm (read via the pool so
  // evicted pages come back from disk).
  for (PageId page_id : pages) {
    auto handle = pool.FetchPage(page_id, LatchMode::kShared);
    ASSERT_TRUE(handle.ok());
    EXPECT_TRUE(RecordUniform(handle->page(), 0, kRecordSize))
        << "page " << page_id;
  }
}

TEST(BufferPoolConcurrencyTest, PinBlocksEvictionUnderPressure) {
  const StorageOptions opts = PoolOptions(4, 2);
  DiskSim disk(opts);
  BufferPool pool(&disk, opts);
  const std::vector<PageId> pages = SeedPages(&pool, 12, 16);
  ASSERT_TRUE(pool.FlushAll().ok());

  // Hold a pin on one page while other threads churn the pool well past
  // its capacity; the pinned frame must never be victimized.
  auto pinned = pool.FetchPage(pages[0], LatchMode::kShared);
  ASSERT_TRUE(pinned.ok());
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < 200; ++i) {
        for (PageId page_id : pages) {
          if (page_id == pages[0]) continue;
          auto handle = pool.FetchPage(page_id, LatchMode::kShared);
          // NoSpace is legal when every other frame is momentarily
          // pinned; anything else is not.
          if (!handle.ok()) {
            EXPECT_TRUE(handle.status().IsNoSpace());
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GT(pool.stats().evictions.load(), 0u);
  // Read through the still-held handle: the frame was never repurposed.
  EXPECT_TRUE(RecordUniform(pinned->page(), 0, 16));
  pinned->Release();
  pool.ResetStats();
  { auto h = pool.FetchPage(pages[0], LatchMode::kShared); }
  EXPECT_EQ(pool.stats().hits.load(), 1u);  // Still resident.
}

TEST(BufferPoolConcurrencyTest, SharedLatchesAdmitParallelReaders) {
  const StorageOptions opts = PoolOptions(4, 1);
  DiskSim disk(opts);
  BufferPool pool(&disk, opts);
  const std::vector<PageId> pages = SeedPages(&pool, 1, 16);

  // All readers must be able to hold the same page's S latch at once: each
  // acquires, then waits for the others. If S latches excluded each other
  // this would deadlock (and trip the test timeout).
  constexpr int kReaders = 4;
  std::atomic<int> holding{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&]() {
      auto handle = pool.FetchPage(pages[0], LatchMode::kShared);
      ASSERT_TRUE(handle.ok());
      holding.fetch_add(1);
      while (holding.load() < kReaders) std::this_thread::yield();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(holding.load(), kReaders);
}

TEST(BufferPoolConcurrencyTest, ExclusiveLatchExcludesReaders) {
  const StorageOptions opts = PoolOptions(4, 1);
  DiskSim disk(opts);
  BufferPool pool(&disk, opts);
  constexpr size_t kRecordSize = 128;
  const std::vector<PageId> pages = SeedPages(&pool, 1, kRecordSize);

  // The writer deliberately mutates the record byte by byte with a yield
  // in the middle: any reader admitted concurrently would observe a mixed
  // pattern.
  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};
  std::thread writer([&]() {
    for (int round = 0; round < 100; ++round) {
      auto handle = pool.FetchPage(pages[0], LatchMode::kExclusive);
      ASSERT_TRUE(handle.ok());
      Page page = handle->page();
      auto record = page.Read(0);
      ASSERT_TRUE(record.ok());
      auto* bytes = const_cast<uint8_t*>(record->data());
      const uint8_t marker = static_cast<uint8_t>(round + 1);
      for (size_t i = 0; i < kRecordSize; ++i) {
        bytes[i] = marker;
        if (i == kRecordSize / 2) std::this_thread::yield();
      }
      handle->MarkDirty();
    }
    stop = true;
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&]() {
      while (!stop.load()) {
        auto handle = pool.FetchPage(pages[0], LatchMode::kShared);
        ASSERT_TRUE(handle.ok());
        if (!RecordUniform(handle->page(), 0, kRecordSize)) torn = true;
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_FALSE(torn.load()) << "reader observed a half-written record";
}

TEST(BufferPoolConcurrencyTest, QuiesceDrainsPinsAndParksNewFetches) {
  const StorageOptions opts = PoolOptions(8, 2);
  DiskSim disk(opts);
  BufferPool pool(&disk, opts);
  const std::vector<PageId> pages = SeedPages(&pool, 4, 16);

  std::atomic<bool> pinned{false};
  std::thread holder([&]() {
    auto handle = pool.FetchPage(pages[0], LatchMode::kShared);
    ASSERT_TRUE(handle.ok());
    pinned = true;
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    // Handle released here: the quiescer may proceed only now.
  });
  while (!pinned.load()) std::this_thread::yield();
  pool.BeginQuiesce();
  // BeginQuiesce returned ⇒ the holder's pin drained first.
  EXPECT_EQ(pool.total_pins(), 0u);
  // The owner itself still has full access.
  { auto h = pool.FetchPage(pages[1], LatchMode::kShared); }
  std::atomic<bool> ended{false};
  std::thread parked([&]() {
    auto handle = pool.FetchPage(pages[2], LatchMode::kShared);
    ASSERT_TRUE(handle.ok());
    // The gate must have parked us until EndQuiesce.
    EXPECT_TRUE(ended.load());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ended = true;
  pool.EndQuiesce();
  holder.join();
  parked.join();
}

}  // namespace
}  // namespace ocb
