// Tests for the OID-addressed object store, including relocation and the
// PlaceSequence primitive used by clustering.

#include "storage/object_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "util/rng.h"

namespace ocb {
namespace {

struct Fixture {
  explicit Fixture(size_t frames = 64, size_t page_size = 512)
      : options(MakeOptions(frames, page_size)),
        disk(options),
        pool(&disk, options),
        store(&pool) {}

  static StorageOptions MakeOptions(size_t frames, size_t page_size) {
    StorageOptions o;
    o.page_size = page_size;
    o.buffer_pool_pages = frames;
    return o;
  }

  StorageOptions options;
  DiskSim disk;
  BufferPool pool;
  ObjectStore store;
};

std::vector<uint8_t> Payload(size_t n, uint8_t fill) {
  return std::vector<uint8_t>(n, fill);
}

TEST(ObjectStoreTest, InsertAssignsSequentialOids) {
  Fixture f;
  auto a = f.store.Insert(Payload(10, 1));
  auto b = f.store.Insert(Payload(10, 2));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, 1u);
  EXPECT_EQ(*b, 2u);
  EXPECT_EQ(f.store.max_oid(), 2u);
  EXPECT_EQ(f.store.stats().objects, 2u);
}

TEST(ObjectStoreTest, ReadReturnsStoredBytes) {
  Fixture f;
  auto oid = f.store.Insert(Payload(33, 0x7E));
  ASSERT_TRUE(oid.ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(f.store.Read(*oid, &out).ok());
  EXPECT_EQ(out, Payload(33, 0x7E));
}

TEST(ObjectStoreTest, ReadMissingFails) {
  Fixture f;
  std::vector<uint8_t> out;
  EXPECT_TRUE(f.store.Read(99, &out).IsNotFound());
  EXPECT_FALSE(f.store.Contains(99));
}

TEST(ObjectStoreTest, UpdateSameAndGrownSize) {
  Fixture f;
  auto oid = f.store.Insert(Payload(50, 1));
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(f.store.Update(*oid, Payload(50, 2)).ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(f.store.Read(*oid, &out).ok());
  EXPECT_EQ(out, Payload(50, 2));
  // Grow beyond the original slot.
  ASSERT_TRUE(f.store.Update(*oid, Payload(400, 3)).ok());
  ASSERT_TRUE(f.store.Read(*oid, &out).ok());
  EXPECT_EQ(out, Payload(400, 3));
}

TEST(ObjectStoreTest, DeleteRemovesAndOidIsNotReused) {
  Fixture f;
  auto a = f.store.Insert(Payload(10, 1));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(f.store.Delete(*a).ok());
  EXPECT_FALSE(f.store.Contains(*a));
  EXPECT_TRUE(f.store.Delete(*a).IsNotFound());
  auto b = f.store.Insert(Payload(10, 2));
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*b, *a);
}

TEST(ObjectStoreTest, OversizedObjectRejected) {
  Fixture f;
  auto r = f.store.Insert(Payload(4096, 1));
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(ObjectStoreTest, PlacementHintCoLocates) {
  // 1 KB pages: after the anchor and five 150-byte fillers, the anchor's
  // page retains > 54 free bytes, so the hinted insert must land there.
  Fixture f(/*frames=*/64, /*page_size=*/1024);
  auto anchor = f.store.Insert(Payload(50, 1));
  ASSERT_TRUE(anchor.ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(f.store.Insert(Payload(200, 9)).ok());
  }
  auto friend_oid = f.store.Insert(Payload(50, 2), /*placement_hint=*/*anchor);
  ASSERT_TRUE(friend_oid.ok());
  auto loc_a = f.store.Locate(*anchor);
  auto loc_b = f.store.Locate(*friend_oid);
  ASSERT_TRUE(loc_a.ok() && loc_b.ok());
  EXPECT_EQ(loc_a->page_id, loc_b->page_id);
}

TEST(ObjectStoreTest, RelocateMovesNextToNeighbor) {
  Fixture f(/*frames=*/64, /*page_size=*/1024);
  auto a = f.store.Insert(Payload(100, 1));
  ASSERT_TRUE(a.ok());
  // Push b far away (180-byte fillers leave 172 free bytes on a's page,
  // enough for b's 104-byte footprint).
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(f.store.Insert(Payload(180, 9)).ok());
  }
  auto b = f.store.Insert(Payload(100, 2));
  ASSERT_TRUE(b.ok());
  ASSERT_NE(f.store.Locate(*a)->page_id, f.store.Locate(*b)->page_id);

  ASSERT_TRUE(f.store.Relocate(*b, *a).ok());
  EXPECT_EQ(f.store.Locate(*a)->page_id, f.store.Locate(*b)->page_id);
  std::vector<uint8_t> out;
  ASSERT_TRUE(f.store.Read(*b, &out).ok());
  EXPECT_EQ(out, Payload(100, 2));  // Bytes survive the move.
  EXPECT_GE(f.store.stats().relocations, 1u);
}

TEST(ObjectStoreTest, RelocateToMissingNeighborFails) {
  Fixture f;
  auto a = f.store.Insert(Payload(10, 1));
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(f.store.Relocate(*a, 12345).IsNotFound());
  EXPECT_TRUE(f.store.Relocate(12345, *a).IsNotFound());
}

TEST(ObjectStoreTest, PlaceSequenceMakesPhysicalOrderMatch) {
  Fixture f;
  // Insert 40 objects, then rewrite a scattered subset contiguously.
  std::vector<Oid> oids;
  for (int i = 0; i < 40; ++i) {
    auto oid = f.store.Insert(Payload(100, static_cast<uint8_t>(i)));
    ASSERT_TRUE(oid.ok());
    oids.push_back(*oid);
  }
  const std::vector<Oid> sequence = {oids[35], oids[2], oids[17], oids[8],
                                     oids[29]};
  ASSERT_TRUE(f.store.PlaceSequence(sequence).ok());
  // The five objects now sit on a small fresh page range, in order:
  // page ids non-decreasing along the sequence and tightly packed.
  std::vector<PageId> pages;
  for (Oid oid : sequence) {
    auto loc = f.store.Locate(oid);
    ASSERT_TRUE(loc.ok());
    pages.push_back(loc->page_id);
  }
  for (size_t i = 1; i < pages.size(); ++i) {
    EXPECT_GE(pages[i], pages[i - 1]);
  }
  // 5 * ~104 bytes fits comfortably in two 512-byte pages.
  EXPECT_LE(pages.back() - pages.front(), 2u);
  // Bytes intact.
  std::vector<uint8_t> out;
  ASSERT_TRUE(f.store.Read(oids[17], &out).ok());
  EXPECT_EQ(out, Payload(100, 17));
  // Unlisted objects untouched and readable.
  ASSERT_TRUE(f.store.Read(oids[0], &out).ok());
  EXPECT_EQ(out, Payload(100, 0));
}

TEST(ObjectStoreTest, PlaceSequenceUnknownOidFails) {
  Fixture f;
  auto a = f.store.Insert(Payload(10, 1));
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(f.store.PlaceSequence({*a, 999}).IsNotFound());
}

TEST(ObjectStoreTest, LiveOidsSortedAndComplete) {
  Fixture f;
  std::vector<Oid> inserted;
  for (int i = 0; i < 10; ++i) {
    auto oid = f.store.Insert(Payload(10, 0));
    ASSERT_TRUE(oid.ok());
    inserted.push_back(*oid);
  }
  ASSERT_TRUE(f.store.Delete(inserted[3]).ok());
  ASSERT_TRUE(f.store.Delete(inserted[7]).ok());
  const std::vector<Oid> live = f.store.LiveOids();
  EXPECT_EQ(live.size(), 8u);
  EXPECT_TRUE(std::is_sorted(live.begin(), live.end()));
  EXPECT_EQ(std::count(live.begin(), live.end(), inserted[3]), 0);
}

// Property test: random insert/update/delete/relocate/place-sequence ops
// preserve all live object contents.
class ObjectStoreFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ObjectStoreFuzz, RandomOperationsPreserveContents) {
  Fixture f(/*frames=*/32, /*page_size=*/512);
  LewisPayneRng rng(GetParam());
  std::map<Oid, std::vector<uint8_t>> expected;

  for (int op = 0; op < 1500; ++op) {
    const int kind = static_cast<int>(rng.UniformInt(0, 9));
    if (kind <= 4) {  // Insert (weighted high to grow the store).
      const size_t len = static_cast<size_t>(rng.UniformInt(1, 200));
      std::vector<uint8_t> data(len);
      for (auto& b : data) b = static_cast<uint8_t>(rng.UniformInt(0, 255));
      auto oid = f.store.Insert(data);
      ASSERT_TRUE(oid.ok());
      expected[*oid] = std::move(data);
    } else if (kind <= 6 && !expected.empty()) {  // Update.
      auto it = expected.begin();
      std::advance(it, rng.UniformInt(
                           0, static_cast<int64_t>(expected.size()) - 1));
      const size_t len = static_cast<size_t>(rng.UniformInt(1, 200));
      std::vector<uint8_t> data(len);
      for (auto& b : data) b = static_cast<uint8_t>(rng.UniformInt(0, 255));
      ASSERT_TRUE(f.store.Update(it->first, data).ok());
      it->second = std::move(data);
    } else if (kind == 7 && !expected.empty()) {  // Delete.
      auto it = expected.begin();
      std::advance(it, rng.UniformInt(
                           0, static_cast<int64_t>(expected.size()) - 1));
      ASSERT_TRUE(f.store.Delete(it->first).ok());
      expected.erase(it);
    } else if (kind == 8 && expected.size() >= 2) {  // Relocate.
      auto it1 = expected.begin();
      std::advance(it1, rng.UniformInt(
                            0, static_cast<int64_t>(expected.size()) - 1));
      auto it2 = expected.begin();
      std::advance(it2, rng.UniformInt(
                            0, static_cast<int64_t>(expected.size()) - 1));
      if (it1->first != it2->first) {
        ASSERT_TRUE(f.store.Relocate(it1->first, it2->first).ok());
      }
    } else if (expected.size() >= 3) {  // PlaceSequence over a subset.
      std::vector<Oid> sequence;
      for (const auto& [oid, data] : expected) {
        if (rng.Bernoulli(0.3)) sequence.push_back(oid);
      }
      if (!sequence.empty()) {
        ASSERT_TRUE(f.store.PlaceSequence(sequence).ok());
      }
    }
  }
  ASSERT_EQ(f.store.stats().objects, expected.size());
  for (const auto& [oid, data] : expected) {
    std::vector<uint8_t> out;
    ASSERT_TRUE(f.store.Read(oid, &out).ok());
    ASSERT_EQ(out, data) << "oid " << oid;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObjectStoreFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u));

// --- Concurrency (the suite carries the `concurrency` ctest label) ------

// Hot-page contention: many threads read and rewrite objects co-located on
// one page, racing growth-relocations off it. Exercises the optimistic
// lookup→latch→validate protocol and the ordered dual-latch move path on a
// single page-latch hotspot.
TEST(ObjectStoreTest, HotPageContentionKeepsObjectsIntact) {
  // 512-byte pages: the 8×48-byte hot set leaves ~80 free bytes, so one
  // in-place growth fits but concurrent growers race — losers take the
  // dual-latched relocation path off the hot page.
  Fixture f(/*frames=*/64, /*page_size=*/512);
  // Co-locate the hot set on one page via placement hints.
  constexpr size_t kHotObjects = 8;
  constexpr size_t kBaseSize = 48;
  std::vector<Oid> hot;
  for (size_t i = 0; i < kHotObjects; ++i) {
    auto oid = f.store.Insert(Payload(kBaseSize, 0x11),
                              hot.empty() ? kInvalidOid : hot.front());
    ASSERT_TRUE(oid.ok());
    hot.push_back(*oid);
  }
  {
    auto loc0 = f.store.Locate(hot.front());
    ASSERT_TRUE(loc0.ok());
    for (Oid oid : hot) {
      auto loc = f.store.Locate(oid);
      ASSERT_TRUE(loc.ok());
      EXPECT_EQ(loc->page_id, loc0->page_id) << "hot set not co-located";
    }
  }

  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t]() {
      LewisPayneRng rng(static_cast<uint64_t>(t) + 17);
      for (int i = 0; i < 300 && !failed.load(); ++i) {
        const Oid oid = hot[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(hot.size()) - 1))];
        const int kind = static_cast<int>(rng.UniformInt(0, 9));
        if (kind < 6) {  // Read: must never be torn or mis-slotted.
          std::vector<uint8_t> out;
          Status st = f.store.Read(oid, &out);
          if (!st.ok()) {
            failed = true;
            break;
          }
          for (uint8_t b : out) {
            if (b != out[0]) failed = true;  // Torn record.
          }
        } else if (kind < 9) {  // Same-size rewrite (stays on the page).
          const uint8_t marker = static_cast<uint8_t>(t * 16 + kind);
          Status st =
              f.store.Update(oid, Payload(kBaseSize, marker));
          if (!st.ok() && !st.IsNotFound()) failed = true;
        } else {  // Growth: may relocate off the hot page (dual latch).
          const uint8_t marker = static_cast<uint8_t>(t * 16 + 15);
          Status st = f.store.Update(
              oid, Payload(kBaseSize + 80, marker));
          if (!st.ok() && !st.IsNoSpace()) failed = true;
          // Shrink it back so the page keeps churning both directions.
          st = f.store.Update(oid, Payload(kBaseSize, marker));
          if (!st.ok()) failed = true;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_FALSE(failed) << "lost, torn or mis-resolved object";
  for (Oid oid : hot) {
    std::vector<uint8_t> out;
    ASSERT_TRUE(f.store.Read(oid, &out).ok()) << "oid " << oid;
    ASSERT_EQ(out.size(), kBaseSize);
    for (uint8_t b : out) EXPECT_EQ(b, out[0]);
  }
  EXPECT_EQ(f.store.stats().objects, kHotObjects);
}

// Concurrent inserters and deleters over disjoint key ranges: the striped
// object table and the shared free-space map must keep counts and contents
// exact.
TEST(ObjectStoreTest, ConcurrentInsertDeleteKeepsTableExact) {
  Fixture f(/*frames=*/64, /*page_size=*/512);
  constexpr int kThreads = 6;
  constexpr int kPerThread = 120;
  std::vector<std::vector<Oid>> surviving(kThreads);
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        const uint8_t marker = static_cast<uint8_t>(t + 1);
        auto oid = f.store.Insert(Payload(20 + t, marker));
        if (!oid.ok()) {
          failed = true;
          return;
        }
        if (i % 3 == 0) {
          if (!f.store.Delete(*oid).ok()) failed = true;
        } else {
          surviving[static_cast<size_t>(t)].push_back(*oid);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_FALSE(failed);
  size_t expected = 0;
  for (int t = 0; t < kThreads; ++t) {
    expected += surviving[static_cast<size_t>(t)].size();
    for (Oid oid : surviving[static_cast<size_t>(t)]) {
      std::vector<uint8_t> out;
      ASSERT_TRUE(f.store.Read(oid, &out).ok());
      ASSERT_EQ(out, Payload(20 + t, static_cast<uint8_t>(t + 1)));
    }
  }
  EXPECT_EQ(f.store.stats().objects, expected);
  EXPECT_EQ(f.store.LiveOids().size(), expected);
}

}  // namespace
}  // namespace ocb
