// Tests for unit-aligned placement and physical-order iteration — the
// primitives behind DSTC's phase-5 physical reorganization.

#include <gtest/gtest.h>

#include <vector>

#include "storage/object_store.h"
#include "util/rng.h"

namespace ocb {
namespace {

struct Fixture {
  explicit Fixture(size_t page_size = 1024)
      : options(MakeOptions(page_size)),
        disk(options),
        pool(&disk, options),
        store(&pool) {}

  static StorageOptions MakeOptions(size_t page_size) {
    StorageOptions o;
    o.page_size = page_size;
    o.buffer_pool_pages = 64;
    return o;
  }

  std::vector<Oid> Fill(int count, size_t bytes) {
    std::vector<Oid> oids;
    for (int i = 0; i < count; ++i) {
      auto oid = store.Insert(
          std::vector<uint8_t>(bytes, static_cast<uint8_t>(i)));
      EXPECT_TRUE(oid.ok());
      oids.push_back(*oid);
    }
    return oids;
  }

  PageId PageOf(Oid oid) { return store.Locate(oid)->page_id; }

  StorageOptions options;
  DiskSim disk;
  BufferPool pool;
  ObjectStore store;
};

TEST(PlaceUnitsTest, UnitsNeverStraddlePages) {
  Fixture f;
  // 300-byte objects: three fit per 1 KB page; units of two (608 bytes)
  // would straddle if packed naively after a unit of three.
  std::vector<Oid> oids = f.Fill(12, 300);
  const std::vector<std::vector<Oid>> units = {
      {oids[0], oids[1], oids[2]},   // Fills page A.
      {oids[3], oids[4]},            // Page B.
      {oids[5], oids[6]},            // Fits with previous? 4*304 > 1012: C.
      {oids[7]},
  };
  ASSERT_TRUE(f.store.PlaceUnits(units).ok());
  for (const auto& unit : units) {
    const PageId first = f.PageOf(unit.front());
    for (Oid member : unit) {
      EXPECT_EQ(f.PageOf(member), first) << "unit member " << member;
    }
  }
}

TEST(PlaceUnitsTest, SmallUnitsShareAPage) {
  Fixture f;
  std::vector<Oid> oids = f.Fill(6, 100);
  const std::vector<std::vector<Oid>> units = {
      {oids[0], oids[1]}, {oids[2], oids[3]}, {oids[4], oids[5]}};
  ASSERT_TRUE(f.store.PlaceUnits(units).ok());
  // 6 * 104 = 624 bytes: all three units fit on one page.
  const PageId page = f.PageOf(oids[0]);
  for (Oid oid : oids) EXPECT_EQ(f.PageOf(oid), page);
}

TEST(PlaceUnitsTest, OversizedUnitSpills) {
  Fixture f;
  // A single unit larger than one page must still place completely.
  std::vector<Oid> oids = f.Fill(8, 300);
  const std::vector<std::vector<Oid>> units = {
      {oids.begin(), oids.end()}};
  ASSERT_TRUE(f.store.PlaceUnits(units).ok());
  for (size_t i = 0; i < oids.size(); ++i) {
    std::vector<uint8_t> out;
    ASSERT_TRUE(f.store.Read(oids[i], &out).ok());
    EXPECT_EQ(out[0], static_cast<uint8_t>(i));
  }
}

TEST(PlaceUnitsTest, EmptyAndSingletonUnits) {
  Fixture f;
  std::vector<Oid> oids = f.Fill(2, 50);
  ASSERT_TRUE(f.store.PlaceUnits({{}, {oids[0]}, {}, {oids[1]}}).ok());
  EXPECT_TRUE(f.store.Contains(oids[0]));
  EXPECT_TRUE(f.store.Contains(oids[1]));
}

TEST(PhysicalOrderTest, MatchesPlacementOrder) {
  Fixture f;
  std::vector<Oid> oids = f.Fill(20, 200);
  // Rewrite in reverse oid order; physical order must then be reversed.
  std::vector<Oid> reversed(oids.rbegin(), oids.rend());
  ASSERT_TRUE(f.store.PlaceSequence(reversed).ok());
  EXPECT_EQ(f.store.LiveOidsInPhysicalOrder(), reversed);
  // LiveOids stays oid-sorted regardless.
  EXPECT_EQ(f.store.LiveOids(), oids);
}

TEST(PhysicalOrderTest, StableUnderDeletes) {
  Fixture f;
  std::vector<Oid> oids = f.Fill(10, 200);
  ASSERT_TRUE(f.store.Delete(oids[4]).ok());
  const std::vector<Oid> physical = f.store.LiveOidsInPhysicalOrder();
  EXPECT_EQ(physical.size(), 9u);
  EXPECT_EQ(std::count(physical.begin(), physical.end(), oids[4]), 0);
}

// Property: PlaceUnits over random unit partitions preserves every byte
// and the units-on-one-page invariant (for units that fit a page).
class PlaceUnitsFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlaceUnitsFuzz, RandomPartitionsKeepInvariants) {
  Fixture f;
  LewisPayneRng rng(GetParam());
  std::vector<Oid> oids;
  std::vector<uint8_t> fills;
  for (int i = 0; i < 60; ++i) {
    const uint8_t fill = static_cast<uint8_t>(rng.UniformInt(0, 255));
    // Max unit = 4 × (230 + 4-byte slot) = 936 bytes < the 1012-byte page
    // payload, so every random unit fits one page.
    const size_t size = static_cast<size_t>(rng.UniformInt(20, 230));
    auto oid = f.store.Insert(std::vector<uint8_t>(size, fill));
    ASSERT_TRUE(oid.ok());
    oids.push_back(*oid);
    fills.push_back(fill);
  }
  for (int round = 0; round < 5; ++round) {
    // Random partition into units of 1..4 objects.
    std::vector<Oid> shuffled = oids;
    std::shuffle(shuffled.begin(), shuffled.end(), rng);
    std::vector<std::vector<Oid>> units;
    size_t i = 0;
    while (i < shuffled.size()) {
      const size_t n = static_cast<size_t>(rng.UniformInt(1, 4));
      std::vector<Oid> unit;
      for (size_t j = 0; j < n && i < shuffled.size(); ++j, ++i) {
        unit.push_back(shuffled[i]);
      }
      units.push_back(std::move(unit));
    }
    ASSERT_TRUE(f.store.PlaceUnits(units).ok());
    // Each unit (all < page size here) lives on one page.
    for (const auto& unit : units) {
      const PageId page = f.PageOf(unit.front());
      for (Oid member : unit) ASSERT_EQ(f.PageOf(member), page);
    }
  }
  for (size_t i = 0; i < oids.size(); ++i) {
    std::vector<uint8_t> out;
    ASSERT_TRUE(f.store.Read(oids[i], &out).ok());
    ASSERT_EQ(out[0], fills[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlaceUnitsFuzz,
                         ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace ocb
