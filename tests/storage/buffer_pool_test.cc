// Tests for the buffer pool: caching, eviction, pinning, write-back.

#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <vector>

namespace ocb {
namespace {

StorageOptions PoolOptions(size_t frames,
                           ReplacementPolicy policy = ReplacementPolicy::kLru) {
  StorageOptions opts;
  opts.page_size = 512;
  opts.buffer_pool_pages = frames;
  opts.replacement_policy = policy;
  return opts;
}

TEST(BufferPoolTest, NewPageIsPinnedAndDirty) {
  const StorageOptions opts = PoolOptions(4);
  DiskSim disk(opts);
  BufferPool pool(&disk, opts);
  PageId id = kInvalidPageId;
  auto handle = pool.NewPage(&id);
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(id, 0u);
  EXPECT_EQ(pool.pinned_frames(), 1u);
  handle->Release();
  EXPECT_EQ(pool.pinned_frames(), 0u);
}

TEST(BufferPoolTest, FetchHitDoesNotTouchDisk) {
  const StorageOptions opts = PoolOptions(4);
  DiskSim disk(opts);
  BufferPool pool(&disk, opts);
  PageId id = kInvalidPageId;
  { auto h = pool.NewPage(&id); ASSERT_TRUE(h.ok()); }
  const uint64_t reads_before = disk.TotalCounters().reads;
  { auto h = pool.FetchPage(id); ASSERT_TRUE(h.ok()); }
  EXPECT_EQ(disk.TotalCounters().reads, reads_before);  // Cached.
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 0u);
}

TEST(BufferPoolTest, EvictionWritesBackDirtyPages) {
  const StorageOptions opts = PoolOptions(2);
  DiskSim disk(opts);
  BufferPool pool(&disk, opts);
  // Create page 0, write a marker through the handle, release.
  PageId p0 = kInvalidPageId;
  {
    auto h = pool.NewPage(&p0);
    ASSERT_TRUE(h.ok());
    Page page = h->page();
    auto slot = page.Insert(std::vector<uint8_t>(8, 0xCD));
    ASSERT_TRUE(slot.ok());
    h->MarkDirty();
  }
  // Fill the pool with two more pages, evicting page 0.
  for (int i = 0; i < 2; ++i) {
    PageId id = kInvalidPageId;
    auto h = pool.NewPage(&id);
    ASSERT_TRUE(h.ok());
  }
  EXPECT_GE(pool.stats().evictions, 1u);
  EXPECT_GE(pool.stats().dirty_writebacks, 1u);
  // Re-fetch page 0 from disk: the marker must have survived.
  auto h = pool.FetchPage(p0);
  ASSERT_TRUE(h.ok());
  const Page page = h->page();
  auto read = page.Read(0);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ((*read)[0], 0xCD);
}

TEST(BufferPoolTest, LruEvictsLeastRecentlyUsed) {
  const StorageOptions opts = PoolOptions(2);
  DiskSim disk(opts);
  BufferPool pool(&disk, opts);
  PageId p0, p1, p2;
  { auto h = pool.NewPage(&p0); ASSERT_TRUE(h.ok()); }
  { auto h = pool.NewPage(&p1); ASSERT_TRUE(h.ok()); }
  // Touch p0 so p1 becomes the LRU victim.
  { auto h = pool.FetchPage(p0); ASSERT_TRUE(h.ok()); }
  { auto h = pool.NewPage(&p2); ASSERT_TRUE(h.ok()); }
  // p0 should still be cached (hit), p1 should miss.
  pool.ResetStats();
  { auto h = pool.FetchPage(p0); ASSERT_TRUE(h.ok()); }
  EXPECT_EQ(pool.stats().hits, 1u);
  { auto h = pool.FetchPage(p1); ASSERT_TRUE(h.ok()); }
  EXPECT_EQ(pool.stats().misses, 1u);
}

TEST(BufferPoolTest, PinnedFramesAreNotEvicted) {
  const StorageOptions opts = PoolOptions(2);
  DiskSim disk(opts);
  BufferPool pool(&disk, opts);
  PageId p0, p1;
  auto pinned = pool.NewPage(&p0);
  ASSERT_TRUE(pinned.ok());
  { auto h = pool.NewPage(&p1); ASSERT_TRUE(h.ok()); }
  // Allocating two more pages must evict p1 (twice re-used frame), never p0.
  for (int i = 0; i < 2; ++i) {
    PageId id;
    auto h = pool.NewPage(&id);
    ASSERT_TRUE(h.ok());
  }
  pool.ResetStats();
  // Page latches are not recursive: release the handle before re-fetching.
  pinned->Release();
  { auto h = pool.FetchPage(p0); ASSERT_TRUE(h.ok()); }
  EXPECT_EQ(pool.stats().hits, 1u);  // Still resident.
}

TEST(BufferPoolTest, AllPinnedFailsCleanly) {
  const StorageOptions opts = PoolOptions(2);
  DiskSim disk(opts);
  BufferPool pool(&disk, opts);
  PageId p0, p1;
  auto h0 = pool.NewPage(&p0);
  auto h1 = pool.NewPage(&p1);
  ASSERT_TRUE(h0.ok() && h1.ok());
  PageId p2;
  auto h2 = pool.NewPage(&p2);
  EXPECT_FALSE(h2.ok());
  EXPECT_TRUE(h2.status().IsNoSpace());
}

TEST(BufferPoolTest, FlushAllPersistsWithoutEvicting) {
  const StorageOptions opts = PoolOptions(4);
  DiskSim disk(opts);
  BufferPool pool(&disk, opts);
  PageId p0;
  {
    auto h = pool.NewPage(&p0);
    ASSERT_TRUE(h.ok());
    Page page = h->page();
    ASSERT_TRUE(page.Insert(std::vector<uint8_t>(4, 0x77)).ok());
    h->MarkDirty();
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  // Direct disk read shows the flushed image.
  std::vector<uint8_t> raw(opts.page_size);
  ASSERT_TRUE(disk.ReadPage(p0, raw.data()).ok());
  Page page(raw.data(), opts.page_size);
  auto read = page.Read(0);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ((*read)[0], 0x77);
  // Still cached afterwards.
  pool.ResetStats();
  { auto h = pool.FetchPage(p0); ASSERT_TRUE(h.ok()); }
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST(BufferPoolTest, InvalidateAllColdStartsTheCache) {
  const StorageOptions opts = PoolOptions(4);
  DiskSim disk(opts);
  BufferPool pool(&disk, opts);
  PageId p0;
  { auto h = pool.NewPage(&p0); ASSERT_TRUE(h.ok()); }
  ASSERT_TRUE(pool.InvalidateAll().ok());
  pool.ResetStats();
  { auto h = pool.FetchPage(p0); ASSERT_TRUE(h.ok()); }
  EXPECT_EQ(pool.stats().misses, 1u);
}

TEST(BufferPoolTest, InvalidateAllRefusesPinnedFrames) {
  const StorageOptions opts = PoolOptions(4);
  DiskSim disk(opts);
  BufferPool pool(&disk, opts);
  PageId p0;
  auto h = pool.NewPage(&p0);
  ASSERT_TRUE(h.ok());
  EXPECT_TRUE(pool.InvalidateAll().IsAborted());
}

TEST(BufferPoolTest, MoveHandleTransfersPin) {
  const StorageOptions opts = PoolOptions(4);
  DiskSim disk(opts);
  BufferPool pool(&disk, opts);
  PageId p0;
  auto h = pool.NewPage(&p0);
  ASSERT_TRUE(h.ok());
  PageHandle moved = std::move(h).value();
  EXPECT_EQ(pool.pinned_frames(), 1u);
  moved.Release();
  EXPECT_EQ(pool.pinned_frames(), 0u);
}

// The same workload behaves sanely under every replacement policy.
class PolicySweep : public ::testing::TestWithParam<ReplacementPolicy> {};

TEST_P(PolicySweep, CacheWorksAndEvicts) {
  const StorageOptions opts = PoolOptions(8, GetParam());
  DiskSim disk(opts);
  BufferPool pool(&disk, opts);
  std::vector<PageId> pages(32);
  for (auto& id : pages) {
    auto h = pool.NewPage(&id);
    ASSERT_TRUE(h.ok());
  }
  // Re-touch all pages; with 8 frames over 32 pages most must miss, and
  // every fetch must return the correct page.
  for (PageId id : pages) {
    auto h = pool.FetchPage(id);
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(h->page().page_id(), id);
  }
  EXPECT_GT(pool.stats().misses, 0u);
  EXPECT_GE(pool.stats().evictions, 24u);
}

INSTANTIATE_TEST_SUITE_P(Policies, PolicySweep,
                         ::testing::Values(ReplacementPolicy::kLru,
                                           ReplacementPolicy::kClock,
                                           ReplacementPolicy::kFifo));

}  // namespace
}  // namespace ocb
