// Tests for the simulated disk and its I/O accounting scopes.

#include "storage/disk_sim.h"

#include <gtest/gtest.h>

#include <vector>

namespace ocb {
namespace {

StorageOptions SmallOptions() {
  StorageOptions opts;
  opts.page_size = 512;
  opts.read_latency_nanos = 100;
  opts.write_latency_nanos = 200;
  return opts;
}

TEST(DiskSimTest, AllocateReadWriteRoundtrip) {
  SimClock clock;
  DiskSim disk(SmallOptions(), &clock);
  const PageId p = disk.AllocatePage();
  EXPECT_EQ(p, 0u);
  EXPECT_EQ(disk.num_pages(), 1u);

  std::vector<uint8_t> out(512, 0xFF), in(512, 0xAB);
  ASSERT_TRUE(disk.WritePage(p, in.data()).ok());
  ASSERT_TRUE(disk.ReadPage(p, out.data()).ok());
  EXPECT_EQ(out, in);
}

TEST(DiskSimTest, FreshPageIsZeroed) {
  SimClock clock;
  DiskSim disk(SmallOptions(), &clock);
  const PageId p = disk.AllocatePage();
  std::vector<uint8_t> out(512, 0xFF);
  ASSERT_TRUE(disk.ReadPage(p, out.data()).ok());
  EXPECT_EQ(out, std::vector<uint8_t>(512, 0));
}

TEST(DiskSimTest, OutOfRangeAccessFails) {
  DiskSim disk(SmallOptions());
  std::vector<uint8_t> buf(512);
  EXPECT_TRUE(disk.ReadPage(3, buf.data()).IsIOError());
  EXPECT_TRUE(disk.WritePage(3, buf.data()).IsIOError());
}

TEST(DiskSimTest, CountersFollowScope) {
  DiskSim disk(SmallOptions());
  const PageId p = disk.AllocatePage();
  std::vector<uint8_t> buf(512, 0);

  disk.set_scope(IoScope::kGeneration);
  ASSERT_TRUE(disk.WritePage(p, buf.data()).ok());
  disk.set_scope(IoScope::kTransaction);
  ASSERT_TRUE(disk.ReadPage(p, buf.data()).ok());
  ASSERT_TRUE(disk.ReadPage(p, buf.data()).ok());
  disk.set_scope(IoScope::kClustering);
  ASSERT_TRUE(disk.WritePage(p, buf.data()).ok());

  EXPECT_EQ(disk.counters(IoScope::kGeneration).writes, 1u);
  EXPECT_EQ(disk.counters(IoScope::kGeneration).reads, 0u);
  EXPECT_EQ(disk.counters(IoScope::kTransaction).reads, 2u);
  EXPECT_EQ(disk.counters(IoScope::kClustering).writes, 1u);
  EXPECT_EQ(disk.TotalCounters().total(), 4u);
}

TEST(DiskSimTest, ScopedIoScopeRestores) {
  DiskSim disk(SmallOptions());
  disk.set_scope(IoScope::kTransaction);
  {
    ScopedIoScope guard(&disk, IoScope::kClustering);
    EXPECT_EQ(disk.scope(), IoScope::kClustering);
    {
      ScopedIoScope nested(&disk, IoScope::kGeneration);
      EXPECT_EQ(disk.scope(), IoScope::kGeneration);
    }
    EXPECT_EQ(disk.scope(), IoScope::kClustering);
  }
  EXPECT_EQ(disk.scope(), IoScope::kTransaction);
}

TEST(DiskSimTest, LatencyChargedToClock) {
  SimClock clock;
  DiskSim disk(SmallOptions(), &clock);
  const PageId p = disk.AllocatePage();
  std::vector<uint8_t> buf(512, 0);
  ASSERT_TRUE(disk.ReadPage(p, buf.data()).ok());   // +100.
  ASSERT_TRUE(disk.WritePage(p, buf.data()).ok());  // +200.
  EXPECT_EQ(clock.now_nanos(), 300u);
}

TEST(DiskSimTest, ResetCountersKeepsPages) {
  DiskSim disk(SmallOptions());
  const PageId p = disk.AllocatePage();
  std::vector<uint8_t> in(512, 0x5A), out(512, 0);
  ASSERT_TRUE(disk.WritePage(p, in.data()).ok());
  disk.ResetCounters();
  EXPECT_EQ(disk.TotalCounters().total(), 0u);
  ASSERT_TRUE(disk.ReadPage(p, out.data()).ok());
  EXPECT_EQ(out, in);
}

TEST(DiskSimTest, BackingFilePersistsPages) {
  StorageOptions opts = SmallOptions();
  opts.backing_file = testing::TempDir() + "/ocb_disk_sim_test.bin";
  {
    DiskSim disk(opts);
    const PageId p0 = disk.AllocatePage();
    const PageId p1 = disk.AllocatePage();
    std::vector<uint8_t> a(512, 0x11), b(512, 0x22);
    ASSERT_TRUE(disk.WritePage(p0, a.data()).ok());
    ASSERT_TRUE(disk.WritePage(p1, b.data()).ok());
  }
  // Verify the on-disk image directly.
  std::FILE* f = std::fopen(opts.backing_file.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::vector<uint8_t> img(1024);
  ASSERT_EQ(std::fread(img.data(), 1, img.size(), f), img.size());
  std::fclose(f);
  EXPECT_EQ(img[0], 0x11);
  EXPECT_EQ(img[512], 0x22);
  std::remove(opts.backing_file.c_str());
}

TEST(IoScopeTest, Names) {
  EXPECT_STREQ(IoScopeToString(IoScope::kGeneration), "generation");
  EXPECT_STREQ(IoScopeToString(IoScope::kTransaction), "transaction");
  EXPECT_STREQ(IoScopeToString(IoScope::kClustering), "clustering");
}

}  // namespace
}  // namespace ocb
