// Isolation-anomaly battery across the three concurrency-control
// algorithms (TxnOptions::cc): lost update, write skew, dirty read,
// non-repeatable read, the read-only (pure-reader validation) anomaly,
// and the extent-membership (phantom) race. Expected outcomes:
//
//   * strict 2PL forbids every anomaly it can see through locks (lost
//     update, write skew, dirty read, non-repeatable read); extent scans
//     are live (phantoms possible — the documented baseline);
//   * snapshot isolation forbids all of them EXCEPT write skew, which it
//     admits by construction (disjoint write sets validate first-
//     committer-wins independently) — the admission is *proved* here;
//   * Silo OCC forbids all of them, including phantom scans (extent
//     version validation) and broken pure-reader reads.
//
// Conflicts surface as Status::Aborted (2PL deadlock victim) or
// Status::WriteConflict (SI/OCC validation loss).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "engine/session.h"
#include "oodb/database.h"

namespace ocb {
namespace {

StorageOptions TestOptions() {
  StorageOptions opts;
  opts.page_size = 1024;
  opts.buffer_pool_pages = 32;
  return opts;
}

Schema TwoClassSchema() {
  Schema schema;
  schema.SetRefTypes(Schema::DefaultTraits(3));
  ClassDescriptor a;
  a.id = 0;
  a.maxnref = 3;
  a.basesize = 40;
  a.instance_size = 40;
  a.tref = {2, 2, 2};
  a.cref = {1, 1, 0};
  ClassDescriptor b;
  b.id = 1;
  b.maxnref = 2;
  b.basesize = 20;
  b.instance_size = 20;
  b.tref = {2, 2};
  b.cref = {0, 0};
  Schema out = std::move(schema);
  EXPECT_TRUE(out.AddClass(std::move(a)).ok());
  EXPECT_TRUE(out.AddClass(std::move(b)).ok());
  return out;
}

TxnOptions Opts(CcAlgorithm cc) {
  TxnOptions o;
  o.cc = cc;
  return o;
}

/// A conflict loss: 2PL deadlock victim or SI/OCC validation failure.
bool IsConflict(const Status& st) {
  return st.IsAborted() || st.IsWriteConflict();
}

class AnomalyTest : public ::testing::TestWithParam<CcAlgorithm> {
 protected:
  AnomalyTest() : db_(TestOptions()) {
    db_.SetSchema(TwoClassSchema());
    a_ = *db_.CreateObject(0);
    b_ = *db_.CreateObject(0);
    mark1_ = *db_.CreateObject(1);
    mark2_ = *db_.CreateObject(1);
  }

  Transaction BeginWith(CcAlgorithm cc) {
    return db_.OpenSession().Begin(Opts(cc));
  }

  /// Sets orefs[0] of \p oid to \p value through a plain 2PL txn.
  void Store(Oid oid, Oid value) {
    auto txn = db_.OpenSession().Begin();
    auto obj = txn.Get(oid);
    ASSERT_TRUE(obj.ok());
    obj->orefs[0] = value;
    ASSERT_TRUE(txn.Put(obj.value()).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }

  Oid Load(Oid oid) {
    auto obj = db_.PeekObject(oid);
    EXPECT_TRUE(obj.ok());
    return obj->orefs[0];
  }

  Database db_;
  Oid a_ = kInvalidOid;
  Oid b_ = kInvalidOid;
  Oid mark1_ = kInvalidOid;
  Oid mark2_ = kInvalidOid;
};

// --- Lost update: forbidden under ALL three algorithms -------------------

TEST_P(AnomalyTest, LostUpdateExactlyOneWinner) {
  // Both clients read A, then write their own mark back — the classic
  // lost-update race. 2PL: both hold S, the X upgrades deadlock, one
  // victim. SI: both buffer, first committer wins, the second fails
  // first-committer-wins validation. OCC: the second committer's read
  // stamp changed. In every case exactly one mark survives and the
  // loser KNOWS it lost (typed failure) — no silent overwrite.
  std::atomic<int> ready{0};
  std::atomic<int> losers{0};
  std::vector<Oid> committed(2, kInvalidOid);

  auto client = [&](int idx, Oid mark) {
    auto txn = BeginWith(GetParam());
    auto obj = txn.Get(a_);
    ASSERT_TRUE(obj.ok()) << obj.status().ToString();
    ready.fetch_add(1);
    while (ready.load() < 2) std::this_thread::yield();
    obj->orefs[0] = mark;
    Status st = txn.Put(obj.value());
    if (st.ok()) st = txn.Commit();
    if (!st.ok()) {
      ASSERT_TRUE(IsConflict(st)) << st.ToString();
      losers.fetch_add(1);
      (void)txn.Abort();  // Idempotent after an internal abort.
      return;
    }
    committed[static_cast<size_t>(idx)] = mark;
  };

  std::thread c1(client, 0, mark1_);
  std::thread c2(client, 1, mark2_);
  c1.join();
  c2.join();

  EXPECT_EQ(losers.load(), 1) << "exactly one transaction loses the race";
  const Oid winner =
      committed[0] != kInvalidOid ? committed[0] : committed[1];
  ASSERT_NE(winner, kInvalidOid);
  EXPECT_EQ(Load(a_), winner) << "the winner's write survived";
}

// --- Dirty read: never visible under any algorithm -----------------------

TEST_P(AnomalyTest, DirtyWriteNeverVisible) {
  // A 2PL writer rewrites A in place and holds its X lock; a concurrent
  // transaction under the algorithm under test reads A. SI/OCC read
  // through the version store (the writer's pending pre-image shields
  // them) without blocking; a 2PL reader blocks on the S lock until the
  // writer aborts. Either way the dirty value is never observed.
  auto writer = db_.OpenSession().Begin();
  auto dirty = writer.Get(a_);
  ASSERT_TRUE(dirty.ok());
  dirty->orefs[0] = mark1_;
  ASSERT_TRUE(writer.Put(dirty.value()).ok());  // In place, uncommitted.

  if (GetParam() == CcAlgorithm::kStrict2PL) {
    std::atomic<bool> read_done{false};
    Oid seen = mark1_;  // Poisoned default: test fails if never assigned.
    std::thread reader([&] {
      auto txn = BeginWith(CcAlgorithm::kStrict2PL);
      auto obj = txn.Get(a_);  // Blocks behind the writer's X.
      if (obj.ok()) seen = obj->orefs[0];
      read_done.store(true);
      EXPECT_TRUE(txn.Commit().ok());
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(read_done.load()) << "2PL reader must block on the X lock";
    ASSERT_TRUE(writer.Abort().ok());
    reader.join();
    EXPECT_EQ(seen, kInvalidOid) << "only the rolled-back state is visible";
  } else {
    auto txn = BeginWith(GetParam());
    auto obj = txn.Get(a_);  // Never blocks: snapshot / committed-latest.
    ASSERT_TRUE(obj.ok()) << obj.status().ToString();
    EXPECT_EQ(obj->orefs[0], kInvalidOid) << "dirty in-place write leaked";
    ASSERT_TRUE(writer.Abort().ok());
    auto again = txn.Get(a_);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->orefs[0], kInvalidOid);
    EXPECT_TRUE(txn.Commit().ok()) << "clean reads validate";
  }
}

// --- Non-repeatable read -------------------------------------------------

TEST_P(AnomalyTest, NonRepeatableReadForbidden) {
  if (GetParam() == CcAlgorithm::kStrict2PL) {
    // T1's S lock blocks the overwriter until T1 finishes: both reads
    // inside T1 necessarily agree.
    auto t1 = BeginWith(CcAlgorithm::kStrict2PL);
    auto first = t1.Get(a_);
    ASSERT_TRUE(first.ok());
    std::thread overwriter([&] {
      auto t2 = db_.OpenSession().Begin();
      auto obj = t2.Get(a_);
      ASSERT_TRUE(obj.ok());
      obj->orefs[0] = mark1_;
      Status st = t2.Put(obj.value());  // Blocks behind T1's S.
      if (st.ok()) {
        EXPECT_TRUE(t2.Commit().ok());
      } else {
        EXPECT_TRUE(st.IsAborted()) << st.ToString();
        (void)t2.Abort();
      }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    auto second = t1.Get(a_);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(first->orefs[0], second->orefs[0]);
    EXPECT_TRUE(t1.Commit().ok());
    overwriter.join();
    return;
  }

  auto t1 = BeginWith(GetParam());
  auto first = t1.Get(a_);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->orefs[0], kInvalidOid);

  Store(a_, mark1_);  // A committed overwrite between T1's two reads.

  auto second = t1.Get(a_);
  if (GetParam() == CcAlgorithm::kSnapshotIsolation) {
    // SI re-reads the pinned snapshot: same value, and the transaction
    // commits fine (its write set is empty — nothing to validate).
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(second->orefs[0], kInvalidOid);
    EXPECT_TRUE(t1.Commit().ok());
  } else {
    // OCC reads committed-latest, so the re-read CANNOT return the same
    // value — instead it fails fast with WriteConflict (the recorded
    // stamp changed; this transaction can never validate).
    ASSERT_FALSE(second.ok());
    EXPECT_TRUE(second.status().IsWriteConflict())
        << second.status().ToString();
    Status st = t1.Commit();
    EXPECT_TRUE(st.IsWriteConflict()) << st.ToString();
  }
}

// --- Write skew: SI admits it, 2PL and OCC forbid it ---------------------
//
// Constraint: "at least one of A.orefs[0], B.orefs[0] is set". Each
// transaction reads BOTH objects, sees the constraint holds with slack,
// and clears its own side — write sets disjoint, read sets intersecting.

class WriteSkewTest : public AnomalyTest {
 protected:
  void SetUp() override {
    Store(a_, mark1_);
    Store(b_, mark2_);
  }

  /// Reads both objects through \p txn and clears \p victim's slot.
  Status ReadBothClearOne(Transaction& txn, Oid victim) {
    auto oa = txn.Get(a_);
    if (!oa.ok()) return oa.status();
    auto ob = txn.Get(b_);
    if (!ob.ok()) return ob.status();
    EXPECT_TRUE(oa->orefs[0] != kInvalidOid || ob->orefs[0] != kInvalidOid);
    Object cleared = victim == a_ ? oa.value() : ob.value();
    cleared.orefs[0] = kInvalidOid;
    return txn.Put(cleared);
  }

  bool ConstraintHolds() {
    return Load(a_) != kInvalidOid || Load(b_) != kInvalidOid;
  }
};

TEST_F(WriteSkewTest, SnapshotIsolationAdmitsWriteSkew) {
  // Single-threaded interleaving is enough: SI reads never block and
  // writes are buffered. Both transactions validate first-committer-wins
  // over DISJOINT write sets, so both commit — and the cleared-both
  // final state violates the constraint. This is the admission proof.
  auto t1 = BeginWith(CcAlgorithm::kSnapshotIsolation);
  auto t2 = BeginWith(CcAlgorithm::kSnapshotIsolation);
  ASSERT_TRUE(ReadBothClearOne(t1, a_).ok());
  ASSERT_TRUE(ReadBothClearOne(t2, b_).ok());
  EXPECT_TRUE(t1.Commit().ok());
  EXPECT_TRUE(t2.Commit().ok()) << "SI must admit write skew";
  EXPECT_FALSE(ConstraintHolds())
      << "both sides cleared: the write-skew anomaly materialized";
}

TEST_F(WriteSkewTest, SiloOccForbidsWriteSkew) {
  // Same interleaving under OCC: T2's read of A is invalidated by T1's
  // commit, so T2's read-set validation fails. Serializability restored.
  auto t1 = BeginWith(CcAlgorithm::kSiloOCC);
  auto t2 = BeginWith(CcAlgorithm::kSiloOCC);
  ASSERT_TRUE(ReadBothClearOne(t1, a_).ok());
  ASSERT_TRUE(ReadBothClearOne(t2, b_).ok());
  EXPECT_TRUE(t1.Commit().ok());
  Status st = t2.Commit();
  EXPECT_TRUE(st.IsWriteConflict()) << st.ToString();
  EXPECT_TRUE(ConstraintHolds()) << "OCC preserved the constraint";
}

TEST_F(WriteSkewTest, Strict2PlForbidsWriteSkew) {
  // Under 2PL both hold S on {A, B}; the crossing X upgrades deadlock
  // and exactly one side rolls back — the constraint survives.
  std::atomic<int> ready{0};
  std::atomic<int> losers{0};
  auto client = [&](Oid victim) {
    auto txn = BeginWith(CcAlgorithm::kStrict2PL);
    auto oa = txn.Get(a_);
    ASSERT_TRUE(oa.ok());
    auto ob = txn.Get(b_);
    ASSERT_TRUE(ob.ok());
    ready.fetch_add(1);
    while (ready.load() < 2) std::this_thread::yield();
    Object cleared = victim == a_ ? oa.value() : ob.value();
    cleared.orefs[0] = kInvalidOid;
    Status st = txn.Put(cleared);
    if (st.ok()) st = txn.Commit();
    if (!st.ok()) {
      EXPECT_TRUE(st.IsAborted()) << st.ToString();
      losers.fetch_add(1);
      (void)txn.Abort();
    }
  };
  std::thread c1(client, a_);
  std::thread c2(client, b_);
  c1.join();
  c2.join();
  EXPECT_GE(losers.load(), 1) << "2PL must refuse at least one side";
  EXPECT_TRUE(ConstraintHolds()) << "2PL preserved the constraint";
}

// --- Read-only anomaly: pure-reader validation under OCC -----------------

TEST_F(WriteSkewTest, OccPureReaderNeverObservesBrokenReads) {
  // T reads A, then a concurrent transaction commits writes to BOTH A
  // and B, then T reads B: old-A + new-B is not a state that ever
  // existed. A Silo transaction validates its read set even with an
  // empty write set, so T's commit is refused — it never vouches for
  // the broken view.
  auto t = BeginWith(CcAlgorithm::kSiloOCC);
  auto oa = t.Get(a_);
  ASSERT_TRUE(oa.ok());
  EXPECT_EQ(oa->orefs[0], mark1_);

  {  // Writes BOTH objects in one committed transaction.
    auto w = db_.OpenSession().Begin();
    auto wa = w.Get(a_);
    ASSERT_TRUE(wa.ok());
    wa->orefs[0] = kInvalidOid;
    ASSERT_TRUE(w.Put(wa.value()).ok());
    auto wb = w.Get(b_);
    ASSERT_TRUE(wb.ok());
    wb->orefs[0] = kInvalidOid;
    ASSERT_TRUE(w.Put(wb.value()).ok());
    ASSERT_TRUE(w.Commit().ok());
  }

  auto ob = t.Get(b_);  // Committed-latest: the NEW (cleared) B.
  ASSERT_TRUE(ob.ok());
  EXPECT_EQ(ob->orefs[0], kInvalidOid);
  // The combination {old A, new B} is inconsistent; commit must refuse.
  Status st = t.Commit();
  EXPECT_TRUE(st.IsWriteConflict()) << st.ToString();
}

TEST_F(WriteSkewTest, SiReaderAlwaysSeesConsistentCut) {
  // The SI counterpart: both reads resolve against the pinned snapshot,
  // so the view is a consistent cut by construction and commit is fine.
  auto t = BeginWith(CcAlgorithm::kSnapshotIsolation);
  auto oa = t.Get(a_);
  ASSERT_TRUE(oa.ok());

  {
    auto w = db_.OpenSession().Begin();
    auto wa = w.Get(a_);
    ASSERT_TRUE(wa.ok());
    wa->orefs[0] = kInvalidOid;
    ASSERT_TRUE(w.Put(wa.value()).ok());
    auto wb = w.Get(b_);
    ASSERT_TRUE(wb.ok());
    wb->orefs[0] = kInvalidOid;
    ASSERT_TRUE(w.Put(wb.value()).ok());
    ASSERT_TRUE(w.Commit().ok());
  }

  auto ob = t.Get(b_);
  ASSERT_TRUE(ob.ok());
  EXPECT_EQ(oa->orefs[0], mark1_);
  EXPECT_EQ(ob->orefs[0], mark2_) << "snapshot: both values pre-commit";
  EXPECT_TRUE(t.Commit().ok());
}

// --- Extent-membership race (phantom scans) ------------------------------

TEST_F(WriteSkewTest, ExtentRaceOccAbortsOnPhantom) {
  // T scans class 0's extent (recording its version), a concurrent
  // create commits a new member, T writes something and commits: the
  // extent version moved, so validation refuses — T's scan-derived
  // decision never coexists with the phantom.
  auto t = BeginWith(CcAlgorithm::kSiloOCC);
  const size_t members = t.ExtentSnapshot(0).size();
  EXPECT_GE(members, 2u);

  {  // Phantom insert.
    auto w = db_.OpenSession().Begin();
    ASSERT_TRUE(w.Create(0).ok());
    ASSERT_TRUE(w.Commit().ok());
  }

  auto oa = t.Get(a_);
  ASSERT_TRUE(oa.ok());
  oa->orefs[1] = mark2_;
  ASSERT_TRUE(t.Put(oa.value()).ok());
  Status st = t.Commit();
  EXPECT_TRUE(st.IsWriteConflict()) << st.ToString();
}

TEST_F(WriteSkewTest, ExtentRaceSiScanIsRepeatable) {
  // SI writers filter extents at their snapshot: the concurrent create
  // never appears, and a re-scan returns the same membership.
  auto t = BeginWith(CcAlgorithm::kSnapshotIsolation);
  const std::vector<Oid> before = t.ExtentSnapshot(0);

  {
    auto w = db_.OpenSession().Begin();
    ASSERT_TRUE(w.Create(0).ok());
    ASSERT_TRUE(w.Commit().ok());
  }

  const std::vector<Oid> after = t.ExtentSnapshot(0);
  EXPECT_EQ(before, after) << "SI extent scans are repeatable";
  EXPECT_TRUE(t.Commit().ok());

  // And an SI writer's OWN creation is visible to its re-scan.
  auto t2 = BeginWith(CcAlgorithm::kSnapshotIsolation);
  const size_t base = t2.ExtentSnapshot(0).size();
  auto created = t2.Create(0);
  ASSERT_TRUE(created.ok());
  const std::vector<Oid> with_own = t2.ExtentSnapshot(0);
  EXPECT_EQ(with_own.size(), base + 1);
  EXPECT_NE(std::find(with_own.begin(), with_own.end(), *created),
            with_own.end());
  EXPECT_TRUE(t2.Commit().ok());
}

TEST_F(WriteSkewTest, ExtentRaceStrict2PlScansLive) {
  // The documented 2PL baseline: extent scans read live membership, so
  // a committed concurrent create IS visible to the second scan (2PL
  // takes no extent locks — phantom protection is SI/OCC territory).
  auto t = BeginWith(CcAlgorithm::kStrict2PL);
  const size_t before = t.ExtentSnapshot(0).size();
  {
    auto w = db_.OpenSession().Begin();
    ASSERT_TRUE(w.Create(0).ok());
    ASSERT_TRUE(w.Commit().ok());
  }
  EXPECT_EQ(t.ExtentSnapshot(0).size(), before + 1);
  EXPECT_TRUE(t.Commit().ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, AnomalyTest,
    ::testing::Values(CcAlgorithm::kStrict2PL,
                      CcAlgorithm::kSnapshotIsolation,
                      CcAlgorithm::kSiloOCC),
    [](const ::testing::TestParamInfo<CcAlgorithm>& info) {
      switch (info.param) {
        case CcAlgorithm::kStrict2PL:
          return std::string("Strict2PL");
        case CcAlgorithm::kSnapshotIsolation:
          return std::string("SnapshotIsolation");
        case CcAlgorithm::kSiloOCC:
          return std::string("SiloOCC");
      }
      return std::string("Unknown");
    });

}  // namespace
}  // namespace ocb
