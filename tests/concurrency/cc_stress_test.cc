// Conserved-quantity stress for every concurrency-control algorithm
// (TxnOptions::cc), single-shard and sharded. A population of objects
// holds "tokens" (non-null oref slots); writer threads transfer tokens
// between randomly chosen objects — clear a slot in the donor, set a
// slot in the recipient, one transaction — retrying on conflict. The
// invariant: the total token count never changes. A concurrent checker
// thread sums the population through read-only snapshot transactions
// and must see the exact total on every scan (a torn read — donor
// cleared without recipient set, or both set — shifts the sum by one).
//
// What each algorithm is being asked to prove here:
//   * strict 2PL: upgrades deadlock under crossing transfers; victims
//     retry; no update is ever lost;
//   * snapshot isolation: first-committer-wins over the two-object
//     write set; buffered writes apply atomically at commit;
//   * Silo OCC: read-stamp validation catches every raced transfer,
//     including the fail-fast re-read path.
// The snapshot checker holds all three to the same bar: transfers are
// atomic or invisible, never half-applied.

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "engine/session.h"
#include "oodb/database.h"
#include "sharding/sharded_database.h"

namespace ocb {
namespace {

constexpr size_t kObjects = 16;
constexpr int kWriterThreads = 4;
constexpr int kTransfersPerThread = 40;
constexpr int kMaxAttemptsPerTransfer = 2000;

StorageOptions TestOptions() {
  StorageOptions opts;
  opts.page_size = 1024;
  opts.buffer_pool_pages = 64;
  return opts;
}

Schema TokenSchema() {
  Schema schema;
  schema.SetRefTypes(Schema::DefaultTraits(3));
  ClassDescriptor a;
  a.id = 0;
  a.maxnref = 3;
  a.basesize = 40;
  a.instance_size = 40;
  a.tref = {2, 2, 2};
  a.cref = {1, 1, 0};
  ClassDescriptor b;
  b.id = 1;
  b.maxnref = 2;
  b.basesize = 20;
  b.instance_size = 20;
  b.tref = {2, 2};
  b.cref = {0, 0};
  Schema out = std::move(schema);
  EXPECT_TRUE(out.AddClass(std::move(a)).ok());
  EXPECT_TRUE(out.AddClass(std::move(b)).ok());
  return out;
}

TxnOptions WriterOpts(CcAlgorithm cc) {
  TxnOptions o;
  o.cc = cc;
  return o;
}

TxnOptions ReaderOpts() {
  TxnOptions o;
  o.read_only = true;
  return o;
}

bool IsConflict(const Status& st) {
  return st.IsAborted() || st.IsWriteConflict();
}

size_t CountTokens(const Object& obj) {
  size_t n = 0;
  for (Oid ref : obj.orefs) {
    if (ref != kInvalidOid) ++n;
  }
  return n;
}

/// Seeds kObjects class-0 objects, each holding one token in slot 0
/// (pointing at a shared class-1 marker), and returns their oids.
template <typename DB>
std::vector<Oid> SeedPopulation(DB& db) {
  std::vector<Oid> oids;
  oids.reserve(kObjects);
  for (size_t i = 0; i < kObjects; ++i) {
    auto oid = db.CreateObject(0);
    EXPECT_TRUE(oid.ok());
    oids.push_back(*oid);
  }
  const Oid mark = *db.CreateObject(1);
  auto txn = db.OpenSession().Begin();
  for (Oid oid : oids) {
    auto obj = txn.Get(oid);
    EXPECT_TRUE(obj.ok());
    obj->orefs[0] = mark;
    EXPECT_TRUE(txn.Put(obj.value()).ok());
  }
  EXPECT_TRUE(txn.Commit().ok());
  return oids;
}

/// One transfer attempt: move a token from \p donor to \p recipient.
/// Returns OK on success, NotFound when the pair has no capacity (donor
/// empty or recipient full — not a conflict, pick another pair), or the
/// conflict status.
template <typename Session>
Status TryTransfer(Session session, CcAlgorithm cc, Oid donor,
                   Oid recipient) {
  auto txn = session.Begin(WriterOpts(cc));
  auto from = txn.Get(donor);
  if (!from.ok()) {
    (void)txn.Abort();
    return from.status();
  }
  auto to = txn.Get(recipient);
  if (!to.ok()) {
    (void)txn.Abort();
    return to.status();
  }
  int give = -1;
  int take = -1;
  for (size_t s = 0; s < from->orefs.size(); ++s) {
    if (from->orefs[s] != kInvalidOid) give = static_cast<int>(s);
  }
  for (size_t s = 0; s < to->orefs.size(); ++s) {
    if (to->orefs[s] == kInvalidOid) take = static_cast<int>(s);
  }
  if (give < 0 || take < 0) {
    (void)txn.Abort();
    return Status::NotFound("no capacity");
  }
  const Oid token = from->orefs[static_cast<size_t>(give)];
  from->orefs[static_cast<size_t>(give)] = kInvalidOid;
  to->orefs[static_cast<size_t>(take)] = token;
  Status st = txn.Put(from.value());
  if (st.ok()) st = txn.Put(to.value());
  if (st.ok()) st = txn.Commit();
  if (!st.ok()) (void)txn.Abort();
  return st;
}

/// Drives the full stress: writers transfer, a checker scans through
/// read-only snapshot transactions asserting the conserved total.
template <typename DB>
void RunConservedTransferStress(DB& db, CcAlgorithm cc) {
  const std::vector<Oid> oids = SeedPopulation(db);
  std::atomic<bool> done{false};
  std::atomic<int> transfers{0};
  std::atomic<int> conflicts{0};

  std::thread checker([&] {
    size_t scans = 0;
    while (!done.load(std::memory_order_acquire)) {
      auto txn = db.OpenSession().Begin(ReaderOpts());
      size_t total = 0;
      for (Oid oid : oids) {
        auto obj = txn.Get(oid);
        ASSERT_TRUE(obj.ok()) << obj.status().ToString();
        total += CountTokens(obj.value());
      }
      EXPECT_TRUE(txn.Commit().ok());
      ASSERT_EQ(total, kObjects)
          << "torn read after " << scans << " clean scans under "
          << CcAlgorithmToString(cc);
      ++scans;
      std::this_thread::yield();
    }
    EXPECT_GT(scans, 0u);
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriterThreads);
  for (int t = 0; t < kWriterThreads; ++t) {
    writers.emplace_back([&, t] {
      std::mt19937 rng(static_cast<unsigned>(1000 + t));
      std::uniform_int_distribution<size_t> pick(0, oids.size() - 1);
      int ok = 0;
      int attempts = 0;
      while (ok < kTransfersPerThread) {
        if (++attempts > kMaxAttemptsPerTransfer) {
          ADD_FAILURE() << "livelock: thread " << t << " stuck at " << ok
                        << " transfers under " << CcAlgorithmToString(cc);
          break;
        }
        const size_t i = pick(rng);
        size_t j = pick(rng);
        if (j == i) j = (j + 1) % oids.size();
        Status st = TryTransfer(db.OpenSession(), cc, oids[i], oids[j]);
        if (st.ok()) {
          ++ok;
        } else if (IsConflict(st)) {
          conflicts.fetch_add(1, std::memory_order_relaxed);
        } else {
          ASSERT_TRUE(st.IsNotFound()) << st.ToString();
        }
      }
      transfers.fetch_add(ok, std::memory_order_relaxed);
    });
  }
  for (auto& w : writers) w.join();
  done.store(true, std::memory_order_release);
  checker.join();

  EXPECT_EQ(transfers.load(), kWriterThreads * kTransfersPerThread);

  // Final-state audit outside any transaction.
  size_t total = 0;
  for (Oid oid : oids) {
    auto obj = db.PeekObject(oid);
    ASSERT_TRUE(obj.ok());
    total += CountTokens(obj.value());
  }
  EXPECT_EQ(total, kObjects) << "tokens leaked or duplicated under "
                             << CcAlgorithmToString(cc);
}

class CcStressTest : public ::testing::TestWithParam<CcAlgorithm> {};

TEST_P(CcStressTest, SingleShardConservedTransfers) {
  Database db(TestOptions());
  db.SetSchema(TokenSchema());
  RunConservedTransferStress(db, GetParam());
}

TEST_P(CcStressTest, ShardedConservedTransfers) {
  // Four shards, round-robin placement: most transfers cross shards, so
  // SI/OCC finalization and validation run under two-phase commit and
  // the checker's consistent global snapshot does the torn-read audit.
  ShardedDatabase db(TestOptions(), 4);
  db.SetSchema(TokenSchema());
  RunConservedTransferStress(db, GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, CcStressTest,
    ::testing::Values(CcAlgorithm::kStrict2PL,
                      CcAlgorithm::kSnapshotIsolation,
                      CcAlgorithm::kSiloOCC),
    [](const ::testing::TestParamInfo<CcAlgorithm>& info) {
      switch (info.param) {
        case CcAlgorithm::kStrict2PL:
          return std::string("Strict2PL");
        case CcAlgorithm::kSnapshotIsolation:
          return std::string("SnapshotIsolation");
        case CcAlgorithm::kSiloOCC:
          return std::string("SiloOCC");
      }
      return std::string("Unknown");
    });

}  // namespace
}  // namespace ocb
