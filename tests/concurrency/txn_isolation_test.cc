// Transaction-level isolation tests through the Session API: write-write
// conflicts under 2PL (exactly one victim, no lost update), undo-log
// rollback of every mutation kind, lock release at commit, and the
// typed-lifecycle contract (double-commit refusal, idempotent abort).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "engine/session.h"
#include "oodb/database.h"

namespace ocb {
namespace {

StorageOptions TestOptions() {
  StorageOptions opts;
  opts.page_size = 1024;
  opts.buffer_pool_pages = 16;
  return opts;
}

Schema TwoClassSchema() {
  Schema schema;
  schema.SetRefTypes(Schema::DefaultTraits(3));
  ClassDescriptor a;
  a.id = 0;
  a.maxnref = 3;
  a.basesize = 40;
  a.instance_size = 40;
  a.tref = {2, 2, 2};
  a.cref = {1, 1, 0};
  ClassDescriptor b;
  b.id = 1;
  b.maxnref = 2;
  b.basesize = 20;
  b.instance_size = 20;
  b.tref = {2, 2};
  b.cref = {0, 0};
  Schema out = std::move(schema);
  EXPECT_TRUE(out.AddClass(std::move(a)).ok());
  EXPECT_TRUE(out.AddClass(std::move(b)).ok());
  return out;
}

class TxnIsolationTest : public ::testing::Test {
 protected:
  TxnIsolationTest() : db_(TestOptions()) {
    db_.SetSchema(TwoClassSchema());
    source_ = *db_.CreateObject(0);
    target1_ = *db_.CreateObject(1);
    target2_ = *db_.CreateObject(1);
  }

  Transaction Begin() { return db_.OpenSession().Begin(); }

  Database db_;
  Oid source_ = kInvalidOid;
  Oid target1_ = kInvalidOid;
  Oid target2_ = kInvalidOid;
};

TEST_F(TxnIsolationTest, WriteWriteConflictOneAbortsNoLostUpdate) {
  // Both clients read the same object, then write it back with their own
  // mark — the classic lost-update race. Under 2PL both hold S, both
  // request the X upgrade, the wait-for cycle fires, and exactly one
  // client rolls back; the surviving write is the final state.
  std::atomic<int> ready{0};
  std::atomic<int> aborted{0};
  std::vector<Oid> committed_mark(2, kInvalidOid);

  auto client = [&](int idx, Oid mark) {
    auto txn = Begin();
    auto obj = txn.Get(source_);  // S lock.
    ASSERT_TRUE(obj.ok());
    ready.fetch_add(1);
    while (ready.load() < 2) std::this_thread::yield();  // Both hold S.
    obj->orefs[0] = mark;
    Status st = txn.Put(obj.value());  // S→X upgrade.
    if (st.IsAborted()) {
      aborted.fetch_add(1);
      EXPECT_TRUE(txn.Abort().ok());
      return;
    }
    ASSERT_TRUE(st.ok()) << st.ToString();
    committed_mark[static_cast<size_t>(idx)] = mark;
    EXPECT_TRUE(txn.Commit().ok());
  };

  std::thread c1(client, 0, target1_);
  std::thread c2(client, 1, target2_);
  c1.join();
  c2.join();

  EXPECT_EQ(aborted.load(), 1) << "exactly one victim per cycle";
  auto final_obj = db_.PeekObject(source_);
  ASSERT_TRUE(final_obj.ok());
  // No lost update: the stored mark is the one committed client's, and
  // that client observed its own commit succeed.
  const Oid winner_mark =
      committed_mark[0] != kInvalidOid ? committed_mark[0] : committed_mark[1];
  ASSERT_NE(winner_mark, kInvalidOid);
  EXPECT_EQ(final_obj->orefs[0], winner_mark);
}

TEST_F(TxnIsolationTest, AbortRollsBackReferenceAndCreate) {
  ASSERT_TRUE(db_.SetReference(source_, 0, target1_).ok());
  const uint64_t objects_before = db_.object_count();
  const size_t extent0_before = db_.schema().GetClass(0).iterator.size();

  auto txn = Begin();
  auto created = txn.Create(0);
  ASSERT_TRUE(created.ok());
  ASSERT_TRUE(txn.SetReference(source_, 0, target2_).ok());
  ASSERT_TRUE(txn.SetReference(*created, 0, target1_).ok());
  ASSERT_TRUE(txn.Abort().ok());

  // The created object is gone, extent included.
  EXPECT_EQ(db_.object_count(), objects_before);
  EXPECT_EQ(db_.schema().GetClass(0).iterator.size(), extent0_before);
  EXPECT_FALSE(db_.object_store()->Contains(*created));

  // The retargeted reference and both backref arrays are restored.
  auto src = db_.PeekObject(source_);
  ASSERT_TRUE(src.ok());
  EXPECT_EQ(src->orefs[0], target1_);
  auto t1 = db_.PeekObject(target1_);
  ASSERT_TRUE(t1.ok());
  EXPECT_EQ(std::count(t1->backrefs.begin(), t1->backrefs.end(), source_),
            1);
  EXPECT_EQ(std::count(t1->backrefs.begin(), t1->backrefs.end(), *created),
            0);
  auto t2 = db_.PeekObject(target2_);
  ASSERT_TRUE(t2.ok());
  EXPECT_TRUE(t2->backrefs.empty());

  // All locks drained at abort.
  EXPECT_EQ(db_.lock_manager()->locked_object_count(), 0u);
}

TEST_F(TxnIsolationTest, AbortRestoresDeletedObject) {
  ASSERT_TRUE(db_.SetReference(source_, 0, target1_).ok());
  auto before = db_.PeekObject(target1_);
  ASSERT_TRUE(before.ok());

  auto txn = Begin();
  ASSERT_TRUE(txn.Delete(target1_).ok());
  EXPECT_FALSE(db_.object_store()->Contains(target1_));
  ASSERT_TRUE(txn.Abort().ok());

  // The object is back — same oid, same content — and the neighborhood
  // unlink was rolled back with it.
  ASSERT_TRUE(db_.object_store()->Contains(target1_));
  auto after = db_.PeekObject(target1_);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->class_id, before->class_id);
  EXPECT_EQ(after->orefs, before->orefs);
  EXPECT_EQ(after->backrefs, before->backrefs);
  auto src = db_.PeekObject(source_);
  ASSERT_TRUE(src.ok());
  EXPECT_EQ(src->orefs[0], target1_);
  const auto& extent1 = db_.schema().GetClass(1).iterator;
  EXPECT_EQ(std::count(extent1.begin(), extent1.end(), target1_), 1);
}

TEST_F(TxnIsolationTest, CommitReleasesLocksAndPersists) {
  auto txn1 = Begin();
  ASSERT_TRUE(txn1.SetReference(source_, 0, target1_).ok());
  ASSERT_TRUE(txn1.Commit().ok());
  EXPECT_EQ(db_.lock_manager()->locked_object_count(), 0u);
  EXPECT_EQ(txn1.state(), TxnState::kCommitted);

  // A second txn takes the same locks without blocking and sees the
  // committed state.
  auto txn2 = Begin();
  auto obj = txn2.Get(source_);
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ(obj->orefs[0], target1_);
  ASSERT_TRUE(txn2.Commit().ok());
}

TEST_F(TxnIsolationTest, ReaderBlocksOnUncommittedWriteAndSeesCommit) {
  auto writer = Begin();
  auto obj = db_.PeekObject(source_);
  ASSERT_TRUE(obj.ok());
  obj->orefs[1] = target2_;
  ASSERT_TRUE(writer.Put(obj.value()).ok());  // X held.

  std::atomic<bool> read_done{false};
  Oid seen = kInvalidOid;
  std::thread reader([&]() {
    auto txn = db_.OpenSession().Begin();
    auto r = txn.Get(source_);  // Blocks on writer's X.
    ASSERT_TRUE(r.ok());
    seen = r->orefs[1];
    read_done = true;
    EXPECT_TRUE(txn.Commit().ok());
  });

  // The reader must not observe the uncommitted write.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(read_done);
  ASSERT_TRUE(writer.Commit().ok());
  reader.join();
  EXPECT_EQ(seen, target2_);  // Strict 2PL: only the committed state leaks.
}

TEST_F(TxnIsolationTest, DoubleFinishIsRejectedAndAbortIsIdempotent) {
  auto txn = Begin();
  ASSERT_TRUE(txn.Commit().ok());
  // Double commit and abort-after-commit are typed errors.
  EXPECT_TRUE(txn.Commit().IsInvalidArgument());
  EXPECT_TRUE(txn.Abort().IsInvalidArgument());

  // Abort is idempotent: a second abort of an aborted txn is OK.
  auto txn2 = Begin();
  ASSERT_TRUE(txn2.SetReference(source_, 0, target1_).ok());
  ASSERT_TRUE(txn2.Abort().ok());
  EXPECT_TRUE(txn2.Abort().ok());
  EXPECT_TRUE(txn2.Commit().IsInvalidArgument());
}

TEST_F(TxnIsolationTest, UseAfterFinishIsATypedError) {
  auto txn = Begin();
  ASSERT_TRUE(txn.SetReference(source_, 0, target1_).ok());
  ASSERT_TRUE(txn.Commit().ok());

  // Every operation through the finished handle is refused with
  // InvalidArgument — no asserts, no silent no-ops, no UB.
  EXPECT_TRUE(txn.Get(source_).status().IsInvalidArgument());
  EXPECT_TRUE(txn.Put(Object()).IsInvalidArgument());
  EXPECT_TRUE(txn.SetReference(source_, 0, target2_).IsInvalidArgument());
  EXPECT_TRUE(txn.Delete(source_).IsInvalidArgument());
  EXPECT_TRUE(txn.Create(0).status().IsInvalidArgument());
  EXPECT_TRUE(txn.GetMany(std::vector<Oid>{source_})
                  .status()
                  .IsInvalidArgument());
  WriteBatch batch;
  batch.Delete(source_);
  EXPECT_TRUE(txn.Apply(std::move(batch)).status().IsInvalidArgument());
  // And the committed write survived untouched.
  EXPECT_EQ(db_.PeekObject(source_)->orefs[0], target1_);
}

}  // namespace
}  // namespace ocb
