// Tests for the 2PL LockManager: S/X compatibility, FIFO waiting, S→X
// upgrade, and wait-for-graph deadlock detection (a cycle aborts exactly
// one victim — the transaction whose wait would close it).

#include "concurrency/lock_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace ocb {
namespace {

constexpr Oid kA = 1;
constexpr Oid kB = 2;

// Polls until the manager registers `expected` blocked waiters (the cv
// wait itself is invisible, but stats().waits counts block events).
void WaitForWaits(const LockManager& lm, uint64_t expected) {
  for (int i = 0; i < 2000; ++i) {
    if (lm.stats().waits >= expected) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "lock manager never reached " << expected << " waits";
}

TEST(LockManagerTest, SharedLocksAreCompatible) {
  LockManager lm;
  TransactionContext t1(1), t2(2);
  EXPECT_TRUE(lm.Acquire(&t1, kA, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(&t2, kA, LockMode::kShared).ok());
  EXPECT_TRUE(t1.HoldsLock(kA, LockMode::kShared));
  EXPECT_TRUE(t2.HoldsLock(kA, LockMode::kShared));
  EXPECT_EQ(lm.stats().waits, 0u);
  lm.ReleaseAll(&t1);
  lm.ReleaseAll(&t2);
  EXPECT_EQ(lm.locked_object_count(), 0u);
}

TEST(LockManagerTest, ReacquireIsIdempotent) {
  LockManager lm;
  TransactionContext t1(1);
  EXPECT_TRUE(lm.Acquire(&t1, kA, LockMode::kExclusive).ok());
  // X covers S; repeating either mode returns immediately.
  EXPECT_TRUE(lm.Acquire(&t1, kA, LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(&t1, kA, LockMode::kShared).ok());
  EXPECT_EQ(t1.held_locks().size(), 1u);
  lm.ReleaseAll(&t1);
}

TEST(LockManagerTest, ExclusiveBlocksUntilRelease) {
  LockManager lm;
  TransactionContext writer(1), reader(2);
  ASSERT_TRUE(lm.Acquire(&writer, kA, LockMode::kExclusive).ok());

  std::atomic<bool> acquired{false};
  std::thread blocked([&]() {
    EXPECT_TRUE(lm.Acquire(&reader, kA, LockMode::kShared).ok());
    acquired = true;
  });
  WaitForWaits(lm, 1);
  EXPECT_FALSE(acquired);

  lm.ReleaseAll(&writer);
  blocked.join();
  EXPECT_TRUE(acquired);
  EXPECT_GT(reader.lock_wait_nanos(), 0u);
  lm.ReleaseAll(&reader);
}

TEST(LockManagerTest, UpgradeSucceedsWhenSoleHolder) {
  LockManager lm;
  TransactionContext t1(1);
  ASSERT_TRUE(lm.Acquire(&t1, kA, LockMode::kShared).ok());
  ASSERT_TRUE(lm.Acquire(&t1, kA, LockMode::kExclusive).ok());
  EXPECT_TRUE(t1.HoldsLock(kA, LockMode::kExclusive));
  EXPECT_EQ(t1.held_locks().size(), 1u);
  lm.ReleaseAll(&t1);
}

TEST(LockManagerTest, UpgradeWaitsForConcurrentReader) {
  LockManager lm;
  TransactionContext upgrader(1), reader(2);
  ASSERT_TRUE(lm.Acquire(&upgrader, kA, LockMode::kShared).ok());
  ASSERT_TRUE(lm.Acquire(&reader, kA, LockMode::kShared).ok());

  std::atomic<bool> upgraded{false};
  std::thread blocked([&]() {
    EXPECT_TRUE(lm.Acquire(&upgrader, kA, LockMode::kExclusive).ok());
    upgraded = true;
  });
  WaitForWaits(lm, 1);
  EXPECT_FALSE(upgraded);
  lm.ReleaseAll(&reader);
  blocked.join();
  EXPECT_TRUE(upgraded);
  EXPECT_TRUE(upgrader.HoldsLock(kA, LockMode::kExclusive));
  lm.ReleaseAll(&upgrader);
}

TEST(LockManagerTest, DeadlockCycleAbortsExactlyOneVictim) {
  LockManager lm;
  TransactionContext t1(1), t2(2);
  ASSERT_TRUE(lm.Acquire(&t1, kA, LockMode::kExclusive).ok());
  ASSERT_TRUE(lm.Acquire(&t2, kB, LockMode::kExclusive).ok());

  // t1 blocks on B (held by t2) — no cycle yet.
  Status s1;
  std::thread blocked([&]() { s1 = lm.Acquire(&t1, kB, LockMode::kShared); });
  WaitForWaits(lm, 1);

  // t2 requesting A would close the cycle: t2 must be refused immediately
  // while the sleeping t1 stays untouched and eventually gets B.
  Status s2 = lm.Acquire(&t2, kA, LockMode::kExclusive);
  EXPECT_TRUE(s2.IsAborted()) << s2.ToString();
  EXPECT_EQ(lm.stats().deadlocks, 1u);

  lm.ReleaseAll(&t2);  // The victim aborts, releasing B.
  blocked.join();
  EXPECT_TRUE(s1.ok()) << s1.ToString();  // The survivor was never aborted.
  lm.ReleaseAll(&t1);
  EXPECT_EQ(lm.locked_object_count(), 0u);
}

TEST(LockManagerTest, UpgradeDeadlockBetweenTwoReaders) {
  // Both txns hold S on the same object and both want X: each waits for
  // the other to drop S — a classic upgrade deadlock. The second upgrade
  // request must be refused; the first proceeds once the victim releases.
  LockManager lm;
  TransactionContext t1(1), t2(2);
  ASSERT_TRUE(lm.Acquire(&t1, kA, LockMode::kShared).ok());
  ASSERT_TRUE(lm.Acquire(&t2, kA, LockMode::kShared).ok());

  Status s1;
  std::thread blocked([&]() {
    s1 = lm.Acquire(&t1, kA, LockMode::kExclusive);
  });
  WaitForWaits(lm, 1);

  Status s2 = lm.Acquire(&t2, kA, LockMode::kExclusive);
  EXPECT_TRUE(s2.IsAborted()) << s2.ToString();

  lm.ReleaseAll(&t2);
  blocked.join();
  EXPECT_TRUE(s1.ok()) << s1.ToString();
  EXPECT_TRUE(t1.HoldsLock(kA, LockMode::kExclusive));
  lm.ReleaseAll(&t1);
}

TEST(LockManagerTest, TimeoutBackstopAborts) {
  LockManagerOptions options;
  options.wait_timeout_nanos = 20'000'000;  // 20 ms
  LockManager lm(options);
  TransactionContext holder(1), waiter(2);
  ASSERT_TRUE(lm.Acquire(&holder, kA, LockMode::kExclusive).ok());
  // No cycle exists (holder is running, not waiting), so only the timeout
  // can break this wait.
  Status st = lm.Acquire(&waiter, kA, LockMode::kExclusive);
  EXPECT_TRUE(st.IsAborted()) << st.ToString();
  EXPECT_EQ(lm.stats().timeouts, 1u);
  lm.ReleaseAll(&holder);
  lm.ReleaseAll(&waiter);
}

TEST(LockManagerTest, FifoPreventsWriterStarvation) {
  LockManager lm;
  TransactionContext r1(1), writer(2), r2(3);
  ASSERT_TRUE(lm.Acquire(&r1, kA, LockMode::kShared).ok());

  Status writer_status;
  std::thread blocked_writer([&]() {
    writer_status = lm.Acquire(&writer, kA, LockMode::kExclusive);
  });
  WaitForWaits(lm, 1);

  // A later reader must queue behind the waiting writer, not overtake it.
  Status r2_status;
  std::thread blocked_reader([&]() {
    r2_status = lm.Acquire(&r2, kA, LockMode::kShared);
  });
  WaitForWaits(lm, 2);

  lm.ReleaseAll(&r1);
  blocked_writer.join();
  EXPECT_TRUE(writer_status.ok());
  EXPECT_TRUE(writer.HoldsLock(kA, LockMode::kExclusive));

  lm.ReleaseAll(&writer);
  blocked_reader.join();
  EXPECT_TRUE(r2_status.ok());
  lm.ReleaseAll(&r2);
}

}  // namespace
}  // namespace ocb
