// Tests for the 2PL LockManager: S/X compatibility, FIFO waiting, S→X
// upgrade, and wait-for-graph deadlock detection (a cycle aborts exactly
// one victim — the transaction whose wait would close it).

#include "concurrency/lock_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace ocb {
namespace {

constexpr Oid kA = 1;
constexpr Oid kB = 2;

// Polls until the manager registers `expected` blocked waiters (the cv
// wait itself is invisible, but stats().waits counts block events).
void WaitForWaits(const LockManager& lm, uint64_t expected) {
  for (int i = 0; i < 2000; ++i) {
    if (lm.stats().waits >= expected) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "lock manager never reached " << expected << " waits";
}

TEST(LockManagerTest, SharedLocksAreCompatible) {
  LockManager lm;
  TransactionContext t1(1), t2(2);
  EXPECT_TRUE(lm.Acquire(&t1, kA, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(&t2, kA, LockMode::kShared).ok());
  EXPECT_TRUE(t1.HoldsLock(kA, LockMode::kShared));
  EXPECT_TRUE(t2.HoldsLock(kA, LockMode::kShared));
  EXPECT_EQ(lm.stats().waits, 0u);
  lm.ReleaseAll(&t1);
  lm.ReleaseAll(&t2);
  EXPECT_EQ(lm.locked_object_count(), 0u);
}

TEST(LockManagerTest, ReacquireIsIdempotent) {
  LockManager lm;
  TransactionContext t1(1);
  EXPECT_TRUE(lm.Acquire(&t1, kA, LockMode::kExclusive).ok());
  // X covers S; repeating either mode returns immediately.
  EXPECT_TRUE(lm.Acquire(&t1, kA, LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(&t1, kA, LockMode::kShared).ok());
  EXPECT_EQ(t1.held_locks().size(), 1u);
  lm.ReleaseAll(&t1);
}

TEST(LockManagerTest, ExclusiveBlocksUntilRelease) {
  LockManager lm;
  TransactionContext writer(1), reader(2);
  ASSERT_TRUE(lm.Acquire(&writer, kA, LockMode::kExclusive).ok());

  std::atomic<bool> acquired{false};
  std::thread blocked([&]() {
    EXPECT_TRUE(lm.Acquire(&reader, kA, LockMode::kShared).ok());
    acquired = true;
  });
  WaitForWaits(lm, 1);
  EXPECT_FALSE(acquired);

  lm.ReleaseAll(&writer);
  blocked.join();
  EXPECT_TRUE(acquired);
  EXPECT_GT(reader.lock_wait_nanos(), 0u);
  lm.ReleaseAll(&reader);
}

TEST(LockManagerTest, UpgradeSucceedsWhenSoleHolder) {
  LockManager lm;
  TransactionContext t1(1);
  ASSERT_TRUE(lm.Acquire(&t1, kA, LockMode::kShared).ok());
  ASSERT_TRUE(lm.Acquire(&t1, kA, LockMode::kExclusive).ok());
  EXPECT_TRUE(t1.HoldsLock(kA, LockMode::kExclusive));
  EXPECT_EQ(t1.held_locks().size(), 1u);
  lm.ReleaseAll(&t1);
}

TEST(LockManagerTest, UpgradeWaitsForConcurrentReader) {
  LockManager lm;
  TransactionContext upgrader(1), reader(2);
  ASSERT_TRUE(lm.Acquire(&upgrader, kA, LockMode::kShared).ok());
  ASSERT_TRUE(lm.Acquire(&reader, kA, LockMode::kShared).ok());

  std::atomic<bool> upgraded{false};
  std::thread blocked([&]() {
    EXPECT_TRUE(lm.Acquire(&upgrader, kA, LockMode::kExclusive).ok());
    upgraded = true;
  });
  WaitForWaits(lm, 1);
  EXPECT_FALSE(upgraded);
  lm.ReleaseAll(&reader);
  blocked.join();
  EXPECT_TRUE(upgraded);
  EXPECT_TRUE(upgrader.HoldsLock(kA, LockMode::kExclusive));
  lm.ReleaseAll(&upgrader);
}

TEST(LockManagerTest, DeadlockCycleAbortsExactlyOneVictim) {
  LockManager lm;
  TransactionContext t1(1), t2(2);
  ASSERT_TRUE(lm.Acquire(&t1, kA, LockMode::kExclusive).ok());
  ASSERT_TRUE(lm.Acquire(&t2, kB, LockMode::kExclusive).ok());

  // t1 blocks on B (held by t2) — no cycle yet.
  Status s1;
  std::thread blocked([&]() { s1 = lm.Acquire(&t1, kB, LockMode::kShared); });
  WaitForWaits(lm, 1);

  // t2 requesting A would close the cycle: t2 must be refused immediately
  // while the sleeping t1 stays untouched and eventually gets B.
  Status s2 = lm.Acquire(&t2, kA, LockMode::kExclusive);
  EXPECT_TRUE(s2.IsAborted()) << s2.ToString();
  EXPECT_EQ(lm.stats().deadlocks, 1u);

  lm.ReleaseAll(&t2);  // The victim aborts, releasing B.
  blocked.join();
  EXPECT_TRUE(s1.ok()) << s1.ToString();  // The survivor was never aborted.
  lm.ReleaseAll(&t1);
  EXPECT_EQ(lm.locked_object_count(), 0u);
}

TEST(LockManagerTest, UpgradeDeadlockBetweenTwoReaders) {
  // Both txns hold S on the same object and both want X: each waits for
  // the other to drop S — a classic upgrade deadlock. The second upgrade
  // request must be refused; the first proceeds once the victim releases.
  LockManager lm;
  TransactionContext t1(1), t2(2);
  ASSERT_TRUE(lm.Acquire(&t1, kA, LockMode::kShared).ok());
  ASSERT_TRUE(lm.Acquire(&t2, kA, LockMode::kShared).ok());

  Status s1;
  std::thread blocked([&]() {
    s1 = lm.Acquire(&t1, kA, LockMode::kExclusive);
  });
  WaitForWaits(lm, 1);

  Status s2 = lm.Acquire(&t2, kA, LockMode::kExclusive);
  EXPECT_TRUE(s2.IsAborted()) << s2.ToString();

  lm.ReleaseAll(&t2);
  blocked.join();
  EXPECT_TRUE(s1.ok()) << s1.ToString();
  EXPECT_TRUE(t1.HoldsLock(kA, LockMode::kExclusive));
  lm.ReleaseAll(&t1);
}

TEST(LockManagerTest, TimeoutBackstopAborts) {
  LockManagerOptions options;
  options.wait_timeout_nanos = 20'000'000;  // 20 ms
  LockManager lm(options);
  TransactionContext holder(1), waiter(2);
  ASSERT_TRUE(lm.Acquire(&holder, kA, LockMode::kExclusive).ok());
  // No cycle exists (holder is running, not waiting), so only the timeout
  // can break this wait.
  Status st = lm.Acquire(&waiter, kA, LockMode::kExclusive);
  EXPECT_TRUE(st.IsAborted()) << st.ToString();
  EXPECT_EQ(lm.stats().timeouts, 1u);
  lm.ReleaseAll(&holder);
  lm.ReleaseAll(&waiter);
}

// --- Deadlock-policy regression locks (groundwork for wound-wait) -------
//
// The current policy: the transaction whose wait would *close* a cycle is
// refused on the spot — sleepers are never woken to die, so each cycle
// costs exactly one victim. These tests pin that contract (and FIFO
// fairness across an abort) so a future wound-wait / youngest-victim
// option has a behavioural baseline to diff against.

TEST(LockManagerTest, ThreeTxnCycleAbortsOnlyTheCycleCloser) {
  constexpr Oid kC = 3;
  LockManager lm;
  TransactionContext t1(1), t2(2), t3(3);
  ASSERT_TRUE(lm.Acquire(&t1, kA, LockMode::kExclusive).ok());
  ASSERT_TRUE(lm.Acquire(&t2, kB, LockMode::kExclusive).ok());
  ASSERT_TRUE(lm.Acquire(&t3, kC, LockMode::kExclusive).ok());

  // t1 → B (t2) and t2 → C (t3) wait without forming a cycle.
  Status s1, s2;
  std::thread w1([&]() { s1 = lm.Acquire(&t1, kB, LockMode::kExclusive); });
  WaitForWaits(lm, 1);
  std::thread w2([&]() { s2 = lm.Acquire(&t2, kC, LockMode::kExclusive); });
  WaitForWaits(lm, 2);

  // t3 → A closes the 3-cycle: t3 — and only t3 — is the victim.
  Status s3 = lm.Acquire(&t3, kA, LockMode::kExclusive);
  EXPECT_TRUE(s3.IsAborted()) << s3.ToString();
  EXPECT_EQ(lm.stats().deadlocks, 1u);

  // The victim's release unwinds the chain; both sleepers survive.
  lm.ReleaseAll(&t3);
  w2.join();
  EXPECT_TRUE(s2.ok()) << s2.ToString();
  lm.ReleaseAll(&t2);
  w1.join();
  EXPECT_TRUE(s1.ok()) << s1.ToString();
  lm.ReleaseAll(&t1);
  EXPECT_EQ(lm.stats().deadlocks, 1u);  // Still exactly one.
  EXPECT_EQ(lm.locked_object_count(), 0u);
}

TEST(LockManagerTest, FifoOrderSurvivesVictimAbort) {
  // Two writers queue FIFO behind a holder; the holder then aborts (as a
  // deadlock victim elsewhere would). The *first* waiter must be granted
  // next — an abort must not let later waiters overtake.
  LockManager lm;
  TransactionContext holder(1), first(2), second(3);
  ASSERT_TRUE(lm.Acquire(&holder, kA, LockMode::kExclusive).ok());

  std::atomic<bool> first_granted{false};
  std::atomic<bool> second_granted{false};
  Status s_first, s_second;
  std::thread w1([&]() {
    s_first = lm.Acquire(&first, kA, LockMode::kExclusive);
    first_granted = true;
  });
  WaitForWaits(lm, 1);
  std::thread w2([&]() {
    s_second = lm.Acquire(&second, kA, LockMode::kExclusive);
    second_granted = true;
  });
  WaitForWaits(lm, 2);

  lm.ReleaseAll(&holder);  // The "victim" aborts.
  w1.join();
  EXPECT_TRUE(s_first.ok()) << s_first.ToString();
  EXPECT_TRUE(first.HoldsLock(kA, LockMode::kExclusive));
  // The later waiter is still queued behind the new holder.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(second_granted);

  lm.ReleaseAll(&first);
  w2.join();
  EXPECT_TRUE(s_second.ok()) << s_second.ToString();
  lm.ReleaseAll(&second);
  EXPECT_EQ(lm.stats().deadlocks, 0u);  // Pure FIFO run, no cycles.
  EXPECT_EQ(lm.locked_object_count(), 0u);
}

TEST(LockManagerTest, FifoPreventsWriterStarvation) {
  LockManager lm;
  TransactionContext r1(1), writer(2), r2(3);
  ASSERT_TRUE(lm.Acquire(&r1, kA, LockMode::kShared).ok());

  Status writer_status;
  std::thread blocked_writer([&]() {
    writer_status = lm.Acquire(&writer, kA, LockMode::kExclusive);
  });
  WaitForWaits(lm, 1);

  // A later reader must queue behind the waiting writer, not overtake it.
  Status r2_status;
  std::thread blocked_reader([&]() {
    r2_status = lm.Acquire(&r2, kA, LockMode::kShared);
  });
  WaitForWaits(lm, 2);

  lm.ReleaseAll(&r1);
  blocked_writer.join();
  EXPECT_TRUE(writer_status.ok());
  EXPECT_TRUE(writer.HoldsLock(kA, LockMode::kExclusive));

  lm.ReleaseAll(&writer);
  blocked_reader.join();
  EXPECT_TRUE(r2_status.ok());
  lm.ReleaseAll(&r2);
}

// --- Victim-policy selection (LockManagerOptions::victim_policy) --------
//
// The PR 2 baseline contract above (one victim per cycle, FIFO fairness
// across aborts) runs under the default kCycleCloser and stays untouched.
// These tests pin the two alternative policies.

TEST(LockManagerTest, YoungestPolicyWakesSleepingYoungestAsVictim) {
  LockManagerOptions options;
  options.victim_policy = DeadlockPolicy::kYoungest;
  LockManager lm(options);
  TransactionContext t1(1), t2(2);  // t2 is younger (larger id).
  ASSERT_TRUE(lm.Acquire(&t1, kA, LockMode::kExclusive).ok());
  ASSERT_TRUE(lm.Acquire(&t2, kB, LockMode::kExclusive).ok());

  // The *younger* t2 blocks first (t2 → A held by t1).
  Status s2;
  std::thread blocked([&]() {
    s2 = lm.Acquire(&t2, kA, LockMode::kExclusive);
    if (s2.IsAborted()) lm.ReleaseAll(&t2);  // Victims abort.
  });
  WaitForWaits(lm, 1);

  // t1 → B closes the cycle. Under kCycleCloser t1 (the requester) would
  // die; under kYoungest the sleeping t2 is woken as the victim and t1
  // waits on to be granted B once t2's abort releases it.
  Status s1 = lm.Acquire(&t1, kB, LockMode::kExclusive);
  blocked.join();
  EXPECT_TRUE(s1.ok()) << s1.ToString();
  EXPECT_TRUE(s2.IsAborted()) << s2.ToString();
  EXPECT_EQ(lm.stats().victim_wakeups, 1u);
  EXPECT_EQ(lm.stats().deadlocks, 1u);  // One victim for the cycle.
  lm.ReleaseAll(&t1);
  EXPECT_EQ(lm.locked_object_count(), 0u);
}

TEST(LockManagerTest, YoungestPolicyRefusesRequesterWhenItIsYoungest) {
  LockManagerOptions options;
  options.victim_policy = DeadlockPolicy::kYoungest;
  LockManager lm(options);
  TransactionContext t1(1), t2(2);
  ASSERT_TRUE(lm.Acquire(&t1, kA, LockMode::kExclusive).ok());
  ASSERT_TRUE(lm.Acquire(&t2, kB, LockMode::kExclusive).ok());

  // The *older* t1 blocks first (t1 → B held by t2).
  Status s1;
  std::thread blocked([&]() {
    s1 = lm.Acquire(&t1, kB, LockMode::kExclusive);
  });
  WaitForWaits(lm, 1);

  // t2 → A closes the cycle and t2 *is* the youngest member: refused on
  // the spot, exactly like the cycle-closer baseline.
  Status s2 = lm.Acquire(&t2, kA, LockMode::kExclusive);
  EXPECT_TRUE(s2.IsAborted()) << s2.ToString();
  lm.ReleaseAll(&t2);
  blocked.join();
  EXPECT_TRUE(s1.ok()) << s1.ToString();
  lm.ReleaseAll(&t1);
  EXPECT_EQ(lm.locked_object_count(), 0u);
}

TEST(LockManagerTest, WoundWaitOlderWoundsSleepingYounger) {
  LockManagerOptions options;
  options.victim_policy = DeadlockPolicy::kWoundWait;
  LockManager lm(options);
  TransactionContext t1(1), t2(2);
  ASSERT_TRUE(lm.Acquire(&t1, kA, LockMode::kExclusive).ok());
  ASSERT_TRUE(lm.Acquire(&t2, kB, LockMode::kExclusive).ok());

  Status s2;
  std::thread blocked([&]() {
    s2 = lm.Acquire(&t2, kA, LockMode::kExclusive);  // Younger waits.
    if (s2.IsAborted()) lm.ReleaseAll(&t2);
  });
  WaitForWaits(lm, 1);

  // Older t1 wants B, held by the younger (and sleeping) t2: wound-wait
  // wakes t2 as a victim and t1 takes B after the abort releases it.
  Status s1 = lm.Acquire(&t1, kB, LockMode::kExclusive);
  blocked.join();
  EXPECT_TRUE(s1.ok()) << s1.ToString();
  EXPECT_TRUE(s2.IsAborted()) << s2.ToString();
  EXPECT_GE(lm.stats().wounds, 1u);
  lm.ReleaseAll(&t1);
  EXPECT_EQ(lm.locked_object_count(), 0u);
}

TEST(LockManagerTest, WoundWaitRunningYoungerDiesAtNextAcquire) {
  LockManagerOptions options;
  options.victim_policy = DeadlockPolicy::kWoundWait;
  LockManager lm(options);
  TransactionContext t1(1), t2(2);
  ASSERT_TRUE(lm.Acquire(&t2, kA, LockMode::kExclusive).ok());

  // Older t1 blocks on A: the younger holder t2 is *running* (not
  // waiting), so the wound is deferred — flagged, to be honored at t2's
  // next lock request.
  Status s1;
  std::thread blocked([&]() {
    s1 = lm.Acquire(&t1, kA, LockMode::kExclusive);
  });
  WaitForWaits(lm, 1);

  Status s2 = lm.Acquire(&t2, kB, LockMode::kShared);
  EXPECT_TRUE(s2.IsAborted()) << s2.ToString();  // The wound lands here.
  lm.ReleaseAll(&t2);
  blocked.join();
  EXPECT_TRUE(s1.ok()) << s1.ToString();
  EXPECT_GE(lm.stats().wounds, 1u);
  lm.ReleaseAll(&t1);
  EXPECT_EQ(lm.locked_object_count(), 0u);
}

TEST(LockManagerTest, WoundWaitYoungerSimplyWaitsBehindOlder) {
  LockManagerOptions options;
  options.victim_policy = DeadlockPolicy::kWoundWait;
  LockManager lm(options);
  TransactionContext t1(1), t2(2);
  ASSERT_TRUE(lm.Acquire(&t1, kA, LockMode::kExclusive).ok());

  // Younger wants what the older holds: no wound, a plain FIFO wait.
  std::atomic<bool> granted{false};
  Status s2;
  std::thread blocked([&]() {
    s2 = lm.Acquire(&t2, kA, LockMode::kExclusive);
    granted = true;
  });
  WaitForWaits(lm, 1);
  EXPECT_FALSE(granted);
  EXPECT_EQ(lm.stats().wounds, 0u);
  lm.ReleaseAll(&t1);
  blocked.join();
  EXPECT_TRUE(s2.ok()) << s2.ToString();
  lm.ReleaseAll(&t2);
  EXPECT_EQ(lm.locked_object_count(), 0u);
}

TEST(LockManagerTest, PolicyIsSwitchableAtRuntime) {
  LockManager lm;
  EXPECT_EQ(lm.victim_policy(), DeadlockPolicy::kCycleCloser);
  lm.SetVictimPolicy(DeadlockPolicy::kWoundWait);
  EXPECT_EQ(lm.victim_policy(), DeadlockPolicy::kWoundWait);
  lm.SetVictimPolicy(DeadlockPolicy::kYoungest);
  EXPECT_EQ(lm.victim_policy(), DeadlockPolicy::kYoungest);
}

}  // namespace
}  // namespace ocb
