// N-thread snapshot-consistency stress: writer threads transfer units of
// a conserved quantity between "account" objects inside 2PL transactions
// (deadlock victims roll back), while reader threads sum the quantity over
// every account through MVCC snapshot reads. Money conservation is the
// torn-read detector: any reader that observes a half-applied transfer —
// from an in-flight writer, an interleaved commit, or a rolled-back
// victim — reports a wrong total and fails the test.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "engine/session.h"
#include "oodb/database.h"
#include "util/rng.h"

namespace ocb {
namespace {

constexpr uint32_t kAccounts = 24;
constexpr uint32_t kInitialBalance = 100;  // Stored as filler_size.
constexpr int kWriters = 4;
constexpr int kReaders = 4;
constexpr int kTransfersPerWriter = 200;
constexpr int kSumsPerReader = 150;

// Generous page size: balances drift, and an account must never outgrow
// the largest record a page can hold (writers also cap balances below).
StorageOptions TestOptions() {
  StorageOptions opts;
  opts.page_size = 4096;
  opts.buffer_pool_pages = 64;
  return opts;
}

Schema AccountSchema() {
  Schema schema;
  schema.SetRefTypes(Schema::DefaultTraits(1));
  ClassDescriptor account;
  account.id = 0;
  account.maxnref = 1;
  account.basesize = kInitialBalance;
  account.instance_size = kInitialBalance;
  account.tref = {0};
  account.cref = {kNullClass};
  Schema out = std::move(schema);
  EXPECT_TRUE(out.AddClass(std::move(account)).ok());
  return out;
}

TEST(SnapshotStressTest, ReadersAlwaysSeeTheConservedTotal) {
  Database db(TestOptions());
  db.SetSchema(AccountSchema());

  std::vector<Oid> accounts;
  for (uint32_t i = 0; i < kAccounts; ++i) {
    auto oid = db.CreateObject(0);
    ASSERT_TRUE(oid.ok());
    accounts.push_back(*oid);
  }
  const uint64_t kTotal =
      static_cast<uint64_t>(kAccounts) * kInitialBalance;

  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> aborted{0};
  std::atomic<bool> torn{false};
  std::atomic<bool> failed{false};

  auto writer = [&](int id) {
    auto session = db.OpenSession();
    LewisPayneRng rng(static_cast<uint64_t>(id) + 17);
    for (int i = 0; i < kTransfersPerWriter && !failed; ++i) {
      const size_t a = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(kAccounts) - 1));
      size_t b = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(kAccounts) - 2));
      if (b >= a) ++b;
      auto txn = session.Begin();
      bool ok = true;
      // Any step may come back Aborted (deadlock victim / lock timeout);
      // that is a legitimate rollback, not a test failure.
      Status st = Status::OK();
      auto from = txn.Get(accounts[a]);
      if (!from.ok()) st = from.status();
      Result<Object> to =
          st.ok() ? txn.Get(accounts[b]) : Result<Object>(st);
      if (st.ok() && !to.ok()) st = to.status();
      if (st.ok()) {
        uint32_t amount = static_cast<uint32_t>(std::min<int64_t>(
            rng.UniformInt(1, 5), from->filler_size));
        // Keep every account well inside one page record.
        if (to->filler_size + amount > 2000) amount = 0;
        from->filler_size -= amount;
        to->filler_size += amount;
        // Both writes as one batch: one sorted X-footprint pass.
        WriteBatch batch;
        batch.Put(from.value());
        batch.Put(to.value());
        auto applied = txn.Apply(std::move(batch));
        st = applied.ok() ? Status::OK() : applied.status();
        if (st.ok() && !applied->all_ok()) {
          for (const Status& op : applied->statuses) {
            if (!op.ok()) st = op;
          }
        }
      }
      if (!st.ok()) {
        ok = false;
        if (!st.IsAborted()) failed = true;
      }
      if (ok) {
        if (!txn.Commit().ok()) failed = true;
        ++committed;
      } else {
        if (!txn.Abort().ok()) failed = true;
        ++aborted;
      }
    }
  };

  auto reader = [&](int id) {
    auto session = db.OpenSession();
    TxnOptions ro;
    ro.read_only = true;
    LewisPayneRng rng(static_cast<uint64_t>(id) + 7001);
    for (int i = 0; i < kSumsPerReader && !failed && !torn; ++i) {
      auto txn = session.Begin(ro);
      // The whole sum as ONE batched GetMany through the ReadView.
      auto objs = txn.GetMany(accounts);
      uint64_t sum = 0;
      bool ok = objs.ok() && objs->size() == accounts.size();
      if (!objs.ok()) {
        failed = true;
      } else {
        for (const Object& obj : *objs) sum += obj.filler_size;
      }
      // Snapshot readers hold no locks, so they can never be victims.
      if (!txn.Commit().ok()) failed = true;
      if (ok && sum != kTotal) {
        torn = true;
        ADD_FAILURE() << "torn read: snapshot sum " << sum << " != "
                      << kTotal;
      }
    }
  };

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) threads.emplace_back(writer, w);
  for (int r = 0; r < kReaders; ++r) threads.emplace_back(reader, r);
  for (auto& t : threads) t.join();

  ASSERT_FALSE(failed);
  EXPECT_FALSE(torn);
  EXPECT_EQ(committed.load() + aborted.load(),
            static_cast<uint64_t>(kWriters) * kTransfersPerWriter);
  EXPECT_GT(committed.load(), 0u);

  // Quiescent checks: final balances conserve the total, locks are
  // drained, and with no ReadView open GC can reclaim all history.
  uint64_t final_sum = 0;
  for (Oid account : accounts) {
    auto obj = db.PeekObject(account);
    ASSERT_TRUE(obj.ok());
    final_sum += obj->filler_size;
  }
  EXPECT_EQ(final_sum, kTotal);
  EXPECT_EQ(db.lock_manager()->locked_object_count(), 0u);
  EXPECT_EQ(db.read_views()->open_count(), 0u);
  db.CollectVersionGarbage();
  EXPECT_EQ(db.version_store()->stats().live_versions, 0u);
}

}  // namespace
}  // namespace ocb
