// The TxnOptions {read_only, isolation, cc} matrix: nonsensical
// combinations come back as *poisoned* transaction handles — Begin
// refuses with a typed InvalidArgument that every subsequent operation
// re-surfaces — while every sensible combination begins, runs, and
// commits. Also pins the SI/OCC operation surface: SetReference and
// DeleteObject are typed NotSupported (their symmetric backref
// choreography needs 2PL's eager footprint), never silent no-ops.

#include <gtest/gtest.h>

#include <string>

#include "engine/session.h"
#include "oodb/database.h"
#include "sharding/sharded_database.h"

namespace ocb {
namespace {

StorageOptions TestOptions() {
  StorageOptions opts;
  opts.page_size = 1024;
  opts.buffer_pool_pages = 32;
  return opts;
}

Schema OneClassSchema() {
  Schema schema;
  schema.SetRefTypes(Schema::DefaultTraits(3));
  ClassDescriptor a;
  a.id = 0;
  a.maxnref = 3;
  a.basesize = 40;
  a.instance_size = 40;
  a.tref = {2, 2, 2};
  a.cref = {1, 1, 0};
  Schema out = std::move(schema);
  EXPECT_TRUE(out.AddClass(std::move(a)).ok());
  return out;
}

TxnOptions Make(bool read_only, IsolationLevel isolation, CcAlgorithm cc) {
  TxnOptions o;
  o.read_only = read_only;
  o.isolation = isolation;
  o.cc = cc;
  return o;
}

class CcOptionsTest : public ::testing::Test {
 protected:
  CcOptionsTest() : db_(TestOptions()) {
    db_.SetSchema(OneClassSchema());
    oid_ = *db_.CreateObject(0);
  }

  Database db_;
  Oid oid_ = kInvalidOid;
};

TEST_F(CcOptionsTest, RefusedCombinationsComeBackPoisoned) {
  const TxnOptions bad[] = {
      // Read-only snapshot readers never validate: an optimistic cc is
      // a contradiction, not a default to fall back from.
      Make(true, IsolationLevel::kDefault, CcAlgorithm::kSnapshotIsolation),
      Make(true, IsolationLevel::kDefault, CcAlgorithm::kSiloOCC),
      Make(true, IsolationLevel::kSnapshot, CcAlgorithm::kSiloOCC),
      // A writer asking for snapshot *isolation* must run the snapshot
      // *algorithm* — this combination used to silently run strict 2PL.
      Make(false, IsolationLevel::kSnapshot, CcAlgorithm::kStrict2PL),
      Make(false, IsolationLevel::kSnapshot, CcAlgorithm::kSiloOCC),
      // Strict-2PL isolation with an optimistic algorithm contradicts
      // itself on either axis order.
      Make(false, IsolationLevel::kStrict2PL,
           CcAlgorithm::kSnapshotIsolation),
      Make(false, IsolationLevel::kStrict2PL, CcAlgorithm::kSiloOCC),
  };
  for (const TxnOptions& options : bad) {
    auto txn = db_.OpenSession().Begin(options);
    EXPECT_FALSE(txn.valid());
    EXPECT_TRUE(txn.begin_status().IsInvalidArgument())
        << txn.begin_status().ToString();
    // The message names the offending option, not just "invalid".
    EXPECT_NE(txn.begin_status().ToString().find("Begin refused"),
              std::string::npos)
        << txn.begin_status().ToString();
  }
}

TEST_F(CcOptionsTest, PoisonedHandleSurfacesTheRefusalEverywhere) {
  auto txn = db_.OpenSession().Begin(
      Make(true, IsolationLevel::kDefault, CcAlgorithm::kSiloOCC));
  ASSERT_FALSE(txn.valid());
  const std::string refusal = txn.begin_status().ToString();

  // Every operation on the poisoned handle returns THE refusal — no
  // crashes, no mystery InvalidArgument from a deeper layer.
  EXPECT_EQ(txn.Get(oid_).status().ToString(), refusal);
  EXPECT_EQ(txn.Create(0).status().ToString(), refusal);
  Object obj;
  obj.oid = oid_;
  obj.class_id = 0;
  EXPECT_EQ(txn.Put(obj).ToString(), refusal);
  EXPECT_EQ(txn.Commit().ToString(), refusal);
  EXPECT_EQ(txn.Abort().ToString(), refusal);
  // And it stays poisoned: the handle never transitions to usable.
  EXPECT_FALSE(txn.valid());
}

TEST_F(CcOptionsTest, SensibleCombinationsBeginAndCommit) {
  const TxnOptions good[] = {
      Make(false, IsolationLevel::kDefault, CcAlgorithm::kStrict2PL),
      Make(false, IsolationLevel::kDefault, CcAlgorithm::kSnapshotIsolation),
      Make(false, IsolationLevel::kSnapshot,
           CcAlgorithm::kSnapshotIsolation),
      Make(false, IsolationLevel::kDefault, CcAlgorithm::kSiloOCC),
      Make(false, IsolationLevel::kStrict2PL, CcAlgorithm::kStrict2PL),
      Make(true, IsolationLevel::kDefault, CcAlgorithm::kStrict2PL),
      Make(true, IsolationLevel::kSnapshot, CcAlgorithm::kStrict2PL),
      // The pure-locking reader: even reads queue behind writers.
      Make(true, IsolationLevel::kStrict2PL, CcAlgorithm::kStrict2PL),
  };
  for (const TxnOptions& options : good) {
    auto txn = db_.OpenSession().Begin(options);
    ASSERT_TRUE(txn.valid()) << txn.begin_status().ToString();
    EXPECT_TRUE(txn.begin_status().ok());
    auto obj = txn.Get(oid_);
    ASSERT_TRUE(obj.ok()) << obj.status().ToString();
    if (!options.read_only) {
      obj->orefs[0] = oid_;  // Self-reference: always type-compatible.
      ASSERT_TRUE(txn.Put(obj.value()).ok());
    }
    EXPECT_TRUE(txn.Commit().ok());
  }
}

TEST_F(CcOptionsTest, MvccDisabledRefusesOptimisticAlgorithms) {
  Database db(TestOptions());
  db.SetSchema(OneClassSchema());
  db.SetMvccEnabled(false);
  const Oid oid = *db.CreateObject(0);

  for (CcAlgorithm cc :
       {CcAlgorithm::kSnapshotIsolation, CcAlgorithm::kSiloOCC}) {
    auto txn = db.OpenSession().Begin(
        Make(false, IsolationLevel::kDefault, cc));
    EXPECT_FALSE(txn.valid());
    EXPECT_TRUE(txn.begin_status().IsInvalidArgument())
        << txn.begin_status().ToString();
    EXPECT_NE(txn.begin_status().ToString().find("MVCC"),
              std::string::npos);
  }

  // 2PL still works with MVCC off — the baseline is never refused.
  auto txn = db.OpenSession().Begin(
      Make(false, IsolationLevel::kDefault, CcAlgorithm::kStrict2PL));
  ASSERT_TRUE(txn.valid());
  auto obj = txn.Get(oid);
  ASSERT_TRUE(obj.ok());
  EXPECT_TRUE(txn.Commit().ok());
}

TEST_F(CcOptionsTest, NonLockingWritersRefuseReferenceChoreography) {
  for (CcAlgorithm cc :
       {CcAlgorithm::kSnapshotIsolation, CcAlgorithm::kSiloOCC}) {
    auto txn = db_.OpenSession().Begin(
        Make(false, IsolationLevel::kDefault, cc));
    ASSERT_TRUE(txn.valid()) << txn.begin_status().ToString();
    Status set = txn.SetReference(oid_, 0, oid_);
    EXPECT_TRUE(set.IsNotSupported()) << set.ToString();
    Status del = txn.Delete(oid_);
    EXPECT_TRUE(del.IsNotSupported()) << del.ToString();
    // The refusal is advisory, not fatal: the transaction is still
    // usable through the supported surface (Get/Put/Create).
    auto obj = txn.Get(oid_);
    ASSERT_TRUE(obj.ok());
    obj->orefs[0] = oid_;
    EXPECT_TRUE(txn.Put(obj.value()).ok());
    EXPECT_TRUE(txn.Commit().ok());
  }
}

TEST_F(CcOptionsTest, ShardedBeginValidatesTheSameMatrix) {
  ShardedDatabase db(TestOptions(), 2);
  db.SetSchema(OneClassSchema());
  const Oid oid = *db.CreateObject(0);

  auto bad = db.OpenSession().Begin(
      Make(true, IsolationLevel::kDefault, CcAlgorithm::kSnapshotIsolation));
  EXPECT_FALSE(bad.valid());
  EXPECT_TRUE(bad.begin_status().IsInvalidArgument())
      << bad.begin_status().ToString();

  auto good = db.OpenSession().Begin(
      Make(false, IsolationLevel::kSnapshot,
           CcAlgorithm::kSnapshotIsolation));
  ASSERT_TRUE(good.valid()) << good.begin_status().ToString();
  auto obj = good.Get(oid);
  ASSERT_TRUE(obj.ok());
  obj->orefs[0] = oid;
  ASSERT_TRUE(good.Put(obj.value()).ok());
  EXPECT_TRUE(good.Commit().ok());

  auto occ = db.OpenSession().Begin(
      Make(false, IsolationLevel::kDefault, CcAlgorithm::kSiloOCC));
  ASSERT_TRUE(occ.valid());
  Status set = occ.SetReference(oid, 1, oid);
  EXPECT_TRUE(set.IsNotSupported()) << set.ToString();
  EXPECT_TRUE(occ.Commit().ok());
}

}  // namespace
}  // namespace ocb
