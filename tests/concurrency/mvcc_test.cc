// MVCC snapshot-read tests through the Session API: ReadView pinning
// (repeatable read across a concurrent committed update), snapshot
// consistency across objects (write-skew-free read-only transactions),
// visibility of creations and deletions, write refusal, non-blocking
// reads against an in-flight writer, and version-chain garbage
// collection once the oldest ReadView closes.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "engine/session.h"
#include "oodb/database.h"

namespace ocb {
namespace {

StorageOptions TestOptions() {
  StorageOptions opts;
  opts.page_size = 1024;
  opts.buffer_pool_pages = 16;
  return opts;
}

Schema TwoClassSchema() {
  Schema schema;
  schema.SetRefTypes(Schema::DefaultTraits(3));
  ClassDescriptor a;
  a.id = 0;
  a.maxnref = 3;
  a.basesize = 40;
  a.instance_size = 40;
  a.tref = {2, 2, 2};
  a.cref = {1, 1, 0};
  ClassDescriptor b;
  b.id = 1;
  b.maxnref = 2;
  b.basesize = 20;
  b.instance_size = 20;
  b.tref = {2, 2};
  b.cref = {0, 0};
  Schema out = std::move(schema);
  EXPECT_TRUE(out.AddClass(std::move(a)).ok());
  EXPECT_TRUE(out.AddClass(std::move(b)).ok());
  return out;
}

class MvccTest : public ::testing::Test {
 protected:
  MvccTest() : db_(TestOptions()) {
    db_.SetSchema(TwoClassSchema());
    source_ = *db_.CreateObject(0);
    target1_ = *db_.CreateObject(1);
    target2_ = *db_.CreateObject(1);
  }

  Transaction BeginWriter() { return db_.OpenSession().Begin(); }
  Transaction BeginReader() {
    TxnOptions options;
    options.read_only = true;
    return db_.OpenSession().Begin(options);
  }

  Database db_;
  Oid source_ = kInvalidOid;
  Oid target1_ = kInvalidOid;
  Oid target2_ = kInvalidOid;
};

TEST_F(MvccTest, RepeatableReadAcrossConcurrentCommit) {
  ASSERT_TRUE(db_.SetReference(source_, 0, target1_).ok());

  // Reader pins its ReadView before the writer changes anything.
  auto reader = BeginReader();
  auto first = reader.Get(source_);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->orefs[0], target1_);

  // A writer retargets the reference and commits.
  auto writer = BeginWriter();
  ASSERT_TRUE(writer.SetReference(source_, 0, target2_).ok());
  ASSERT_TRUE(writer.Commit().ok());
  auto now = db_.PeekObject(source_);
  ASSERT_TRUE(now.ok());
  EXPECT_EQ(now->orefs[0], target2_);  // The commit really landed.

  // The pinned reader re-reads the old version — repeatable read.
  auto second = reader.Get(source_);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->orefs[0], target1_);
  EXPECT_GE(reader.snapshot_reads(), 2u);
  ASSERT_TRUE(reader.Commit().ok());

  // A ReadView born after the commit sees the new state.
  auto later = BeginReader();
  auto third = later.Get(source_);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->orefs[0], target2_);
  ASSERT_TRUE(later.Commit().ok());
}

TEST_F(MvccTest, SnapshotIsConsistentAcrossObjects) {
  // A reader must never see a committed multi-object write half-applied
  // (the read-only flavour of write-skew freedom): both reads resolve at
  // the ReadView even when the writer commits between them.
  auto reader = BeginReader();
  auto t1_before = reader.Get(target1_);
  ASSERT_TRUE(t1_before.ok());
  EXPECT_TRUE(t1_before->backrefs.empty());

  // Writer links source→target1 and source→target2 in one transaction:
  // both backref arrays change together.
  auto writer = BeginWriter();
  ASSERT_TRUE(writer.SetReference(source_, 0, target1_).ok());
  ASSERT_TRUE(writer.SetReference(source_, 1, target2_).ok());
  ASSERT_TRUE(writer.Commit().ok());

  // The reader's second object still shows the pre-transaction world,
  // matching its first read.
  auto t2_after = reader.Get(target2_);
  ASSERT_TRUE(t2_after.ok());
  EXPECT_TRUE(t2_after->backrefs.empty());
  auto src = reader.Get(source_);
  ASSERT_TRUE(src.ok());
  EXPECT_EQ(src->orefs[0], kInvalidOid);
  EXPECT_EQ(src->orefs[1], kInvalidOid);
  ASSERT_TRUE(reader.Commit().ok());
}

TEST_F(MvccTest, SnapshotReadDoesNotBlockOnInFlightWriter) {
  // The writer holds an X lock with an uncommitted write; a 2PL reader
  // would block until commit, a snapshot reader returns immediately with
  // the committed pre-image.
  auto writer = BeginWriter();
  auto obj = db_.PeekObject(source_);
  ASSERT_TRUE(obj.ok());
  obj->orefs[2] = target2_;
  ASSERT_TRUE(writer.Put(obj.value()).ok());

  auto reader = BeginReader();
  auto seen = reader.Get(source_);
  ASSERT_TRUE(seen.ok());  // No wait, no deadlock, no abort.
  EXPECT_EQ(seen->orefs[2], kInvalidOid);  // Dirty write invisible.
  EXPECT_EQ(reader.lock_wait_nanos(), 0u);
  ASSERT_TRUE(reader.Commit().ok());
  ASSERT_TRUE(writer.Commit().ok());
}

TEST_F(MvccTest, AbortedWriterLeavesSnapshotsUnperturbed) {
  auto reader = BeginReader();
  auto writer = BeginWriter();
  auto obj = db_.PeekObject(source_);
  ASSERT_TRUE(obj.ok());
  obj->orefs[0] = target1_;
  ASSERT_TRUE(writer.Put(obj.value()).ok());
  ASSERT_TRUE(writer.Abort().ok());

  auto seen = reader.Get(source_);
  ASSERT_TRUE(seen.ok());
  EXPECT_EQ(seen->orefs[0], kInvalidOid);
  ASSERT_TRUE(reader.Commit().ok());

  // The discarded pending version left no garbage behind.
  db_.CollectVersionGarbage();
  EXPECT_EQ(db_.version_store()->stats().live_versions, 0u);
}

TEST_F(MvccTest, CreationInvisibleToOlderSnapshots) {
  auto reader = BeginReader();

  auto writer = BeginWriter();
  auto created = writer.Create(1);
  ASSERT_TRUE(created.ok());
  ASSERT_TRUE(writer.Commit().ok());

  // Born-before reader: the object does not exist at its snapshot.
  EXPECT_TRUE(reader.Get(*created).status().IsNotFound());
  ASSERT_TRUE(reader.Commit().ok());

  // Born-after reader sees it.
  auto later = BeginReader();
  EXPECT_TRUE(later.Get(*created).ok());
  ASSERT_TRUE(later.Commit().ok());
}

TEST_F(MvccTest, DeletionKeepsObjectVisibleToOlderSnapshots) {
  ASSERT_TRUE(db_.SetReference(source_, 0, target1_).ok());
  auto reader = BeginReader();

  auto writer = BeginWriter();
  ASSERT_TRUE(writer.Delete(target1_).ok());
  ASSERT_TRUE(writer.Commit().ok());
  EXPECT_FALSE(db_.ContainsObject(target1_));

  // The pinned reader still reads the deleted object's last committed
  // state through its version chain.
  auto seen = reader.Get(target1_);
  ASSERT_TRUE(seen.ok());
  EXPECT_EQ(seen->class_id, 1u);
  ASSERT_TRUE(reader.Commit().ok());

  // Born-after reader: gone.
  auto later = BeginReader();
  EXPECT_TRUE(later.Get(target1_).status().IsNotFound());
  ASSERT_TRUE(later.Commit().ok());
}

TEST_F(MvccTest, WritesThroughReadOnlyTxnAreRefused) {
  auto reader = BeginReader();
  EXPECT_TRUE(reader.Create(0).status().IsInvalidArgument());
  EXPECT_TRUE(
      reader.SetReference(source_, 0, target1_).IsInvalidArgument());
  auto obj = db_.PeekObject(source_);
  ASSERT_TRUE(obj.ok());
  EXPECT_TRUE(reader.Put(obj.value()).IsInvalidArgument());
  EXPECT_TRUE(reader.Delete(source_).IsInvalidArgument());
  WriteBatch batch;
  batch.Put(obj.value());
  EXPECT_TRUE(
      reader.Apply(std::move(batch)).status().IsInvalidArgument());
  // The refusals poisoned nothing: the txn still reads and commits.
  EXPECT_TRUE(reader.Get(source_).ok());
  EXPECT_TRUE(reader.Commit().ok());
  EXPECT_EQ(db_.lock_manager()->locked_object_count(), 0u);
}

TEST_F(MvccTest, GcReclaimsChainsOnceOldestReadViewCloses) {
  auto reader = BeginReader();

  // Three committed writes to the same object build a chain.
  for (Oid to : {target1_, target2_, target1_}) {
    auto writer = BeginWriter();
    ASSERT_TRUE(writer.SetReference(source_, 0, to).ok());
    ASSERT_TRUE(writer.Commit().ok());
  }
  EXPECT_GE(db_.version_store()->stats().live_versions, 3u);

  // While the reader lives, its snapshot holds the whole history back —
  // even an explicit GC pass (and the background thread) must keep every
  // version newer than the pinned snapshot.
  db_.CollectVersionGarbage();
  EXPECT_GE(db_.version_store()->stats().live_versions, 3u);
  auto seen = reader.Get(source_);
  ASSERT_TRUE(seen.ok());
  EXPECT_EQ(seen->orefs[0], kInvalidOid);  // Pre-history state.
  ASSERT_TRUE(reader.Commit().ok());

  // With the oldest (only) ReadView closed, everything is reclaimable.
  db_.CollectVersionGarbage();
  const VersionStoreStats stats = db_.version_store()->stats();
  EXPECT_EQ(stats.live_versions, 0u);
  EXPECT_EQ(stats.live_chains, 0u);
  EXPECT_GE(stats.versions_gced, 3u);
  EXPECT_EQ(db_.read_views()->open_count(), 0u);
}

TEST_F(MvccTest, OldestReadViewGatesGcUnderStaggeredReaders) {
  auto old_reader = BeginReader();

  auto writer = BeginWriter();
  ASSERT_TRUE(writer.SetReference(source_, 0, target1_).ok());
  ASSERT_TRUE(writer.Commit().ok());

  auto young_reader = BeginReader();

  // Closing the *young* view must not unpin history the old one needs.
  ASSERT_TRUE(young_reader.Commit().ok());
  db_.CollectVersionGarbage();
  auto seen = old_reader.Get(source_);
  ASSERT_TRUE(seen.ok());
  EXPECT_EQ(seen->orefs[0], kInvalidOid);

  ASSERT_TRUE(old_reader.Commit().ok());
  db_.CollectVersionGarbage();
  EXPECT_EQ(db_.version_store()->stats().live_versions, 0u);
}

}  // namespace
}  // namespace ocb
