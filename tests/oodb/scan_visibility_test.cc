// Regression tests for torn-extent visibility: a snapshot reader's
// extent walk (what kScan iterates) must not include class members
// created AFTER the reader's snapshot instant — extents themselves are
// not versioned, so membership is filtered through the version store's
// creation versions at the view's timestamp.

#include <gtest/gtest.h>

#include "engine/session.h"
#include "oodb/database.h"
#include "sharding/sharded_database.h"

namespace ocb {
namespace {

StorageOptions TestOptions() {
  StorageOptions opts;
  opts.page_size = 1024;
  opts.buffer_pool_pages = 32;
  return opts;
}

Schema OneClassSchema() {
  Schema schema;
  schema.SetRefTypes(Schema::DefaultTraits(2));
  ClassDescriptor a;
  a.id = 0;
  a.maxnref = 2;
  a.basesize = 24;
  a.instance_size = 24;
  a.tref = {1, 1};
  a.cref = {0, 0};
  Schema out = std::move(schema);
  EXPECT_TRUE(out.AddClass(std::move(a)).ok());
  return out;
}

TEST(ScanVisibilityTest, SnapshotReaderDoesNotSeeMembersBornLater) {
  Database db(TestOptions());
  db.SetSchema(OneClassSchema());
  const Oid old1 = *db.CreateObject(0);
  const Oid old2 = *db.CreateObject(0);

  auto session = db.OpenSession();
  TxnOptions ro;
  ro.read_only = true;
  auto reader = session.Begin(ro);
  ASSERT_TRUE(reader.read_only());

  // A writer commits a NEW class member while the reader is pinned.
  auto writer = session.Begin();
  auto fresh = writer.Create(0);
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(writer.Commit().ok());

  // Current membership includes the newborn; the reader's filtered
  // extent — the membership kScan walks — must not.
  EXPECT_EQ(db.ExtentSnapshot(0), (std::vector<Oid>{old1, old2, *fresh}));
  EXPECT_EQ(reader.ExtentSnapshot(0), (std::vector<Oid>{old1, old2}));
  ASSERT_TRUE(reader.Commit().ok());

  // A view opened after the commit sees all three.
  auto later = session.Begin(ro);
  EXPECT_EQ(later.ExtentSnapshot(0).size(), 3u);
  ASSERT_TRUE(later.Commit().ok());
}

TEST(ScanVisibilityTest, LockingTransactionsSeeCurrentMembership) {
  // Only snapshot readers filter; a read-write (locking) transaction
  // reads current state and keeps the unfiltered extent.
  Database db(TestOptions());
  db.SetSchema(OneClassSchema());
  const Oid old1 = *db.CreateObject(0);

  auto session = db.OpenSession();
  auto rw = session.Begin();
  auto writer = session.Begin();
  auto fresh = writer.Create(0);
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(writer.Commit().ok());
  EXPECT_EQ(rw.ExtentSnapshot(0), (std::vector<Oid>{old1, *fresh}));
  ASSERT_TRUE(rw.Commit().ok());
}

TEST(ScanVisibilityTest, ShardedSnapshotReaderDoesNotSeeMembersBornLater) {
  // Same invariant across shards: the global snapshot point filters each
  // shard's membership through that shard's version store.
  ShardedDatabase db(TestOptions(), 4);
  db.SetSchema(OneClassSchema());
  std::vector<Oid> old_members;
  for (int i = 0; i < 4; ++i) old_members.push_back(*db.CreateObject(0));
  std::sort(old_members.begin(), old_members.end());

  auto session = db.OpenSession();
  TxnOptions ro;
  ro.read_only = true;
  auto reader = session.Begin(ro);
  ASSERT_TRUE(reader.read_only());

  auto writer = session.Begin();
  ASSERT_TRUE(writer.Create(0).ok());
  ASSERT_TRUE(writer.Create(0).ok());  // Two shards gain newborns.
  ASSERT_TRUE(writer.Commit().ok());

  EXPECT_EQ(db.ExtentSnapshot(0).size(), 6u);
  EXPECT_EQ(reader.ExtentSnapshot(0), old_members);
  ASSERT_TRUE(reader.Commit().ok());
}

}  // namespace
}  // namespace ocb
