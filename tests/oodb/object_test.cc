// Tests for the object codec (encode/decode, corruption detection).

#include "oodb/object.h"

#include <gtest/gtest.h>

namespace ocb {
namespace {

Object SampleObject() {
  Object obj;
  obj.class_id = 3;
  obj.orefs = {10, kInvalidOid, 12};
  obj.backrefs = {7, 8};
  obj.filler_size = 64;
  return obj;
}

TEST(ObjectCodecTest, RoundTrip) {
  const Object original = SampleObject();
  std::vector<uint8_t> bytes;
  original.EncodeTo(&bytes);
  EXPECT_EQ(bytes.size(), original.EncodedSize());

  auto decoded = Object::Decode(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->class_id, original.class_id);
  EXPECT_EQ(decoded->orefs, original.orefs);
  EXPECT_EQ(decoded->backrefs, original.backrefs);
  EXPECT_EQ(decoded->filler_size, original.filler_size);
}

TEST(ObjectCodecTest, EmptyObject) {
  Object obj;
  obj.class_id = 0;
  obj.filler_size = 0;
  std::vector<uint8_t> bytes;
  obj.EncodeTo(&bytes);
  EXPECT_EQ(bytes.size(), 12u);  // Header only.
  auto decoded = Object::Decode(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->orefs.empty());
  EXPECT_TRUE(decoded->backrefs.empty());
}

TEST(ObjectCodecTest, EncodedSizeFormula) {
  const Object obj = SampleObject();
  EXPECT_EQ(obj.EncodedSize(), 12u + 8u * (3 + 2) + 64u);
}

TEST(ObjectCodecTest, TruncatedHeaderIsCorruption) {
  std::vector<uint8_t> bytes = {1, 2, 3};
  EXPECT_TRUE(Object::Decode(bytes).status().IsCorruption());
}

TEST(ObjectCodecTest, LengthMismatchIsCorruption) {
  const Object obj = SampleObject();
  std::vector<uint8_t> bytes;
  obj.EncodeTo(&bytes);
  bytes.pop_back();
  EXPECT_TRUE(Object::Decode(bytes).status().IsCorruption());
  bytes.push_back(0);
  bytes.push_back(0);
  EXPECT_TRUE(Object::Decode(bytes).status().IsCorruption());
}

TEST(ObjectCodecTest, FillerTamperingIsDetected) {
  const Object obj = SampleObject();
  std::vector<uint8_t> bytes;
  obj.EncodeTo(&bytes);
  bytes.back() ^= 0xFF;  // Flip a filler byte.
  EXPECT_TRUE(Object::Decode(bytes).status().IsCorruption());
}

TEST(ObjectCodecTest, RefTamperingIsAccepted) {
  // Reference words carry arbitrary values; only framing and filler are
  // checked. Decoding must not reject a changed oid.
  const Object obj = SampleObject();
  std::vector<uint8_t> bytes;
  obj.EncodeTo(&bytes);
  bytes[12] ^= 0x01;  // First oref's low byte.
  auto decoded = Object::Decode(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->orefs[0], 11u);
}

TEST(ObjectCodecTest, LiveRefCountSkipsNulls) {
  const Object obj = SampleObject();
  EXPECT_EQ(obj.LiveRefCount(), 2u);
  Object empty;
  EXPECT_EQ(empty.LiveRefCount(), 0u);
}

TEST(ObjectCodecTest, LargeRefArrays) {
  Object obj;
  obj.class_id = 1;
  obj.filler_size = 10;
  for (uint64_t i = 1; i <= 300; ++i) obj.orefs.push_back(i);
  for (uint64_t i = 1; i <= 500; ++i) obj.backrefs.push_back(i * 7);
  std::vector<uint8_t> bytes;
  obj.EncodeTo(&bytes);
  auto decoded = Object::Decode(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->orefs.size(), 300u);
  EXPECT_EQ(decoded->backrefs.size(), 500u);
  EXPECT_EQ(decoded->backrefs[499], 500u * 7);
}

}  // namespace
}  // namespace ocb
