// Tests for the Database facade: object lifecycle, reference symmetry,
// observer hooks, cold restart.

#include "oodb/database.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace ocb {
namespace {

StorageOptions TestOptions() {
  StorageOptions opts;
  opts.page_size = 1024;
  opts.buffer_pool_pages = 16;
  return opts;
}

Schema TwoClassSchema() {
  Schema schema;
  schema.SetRefTypes(Schema::DefaultTraits(3));
  ClassDescriptor a;
  a.id = 0;
  a.maxnref = 3;
  a.basesize = 40;
  a.instance_size = 40;
  a.tref = {2, 2, 2};
  a.cref = {1, 1, 0};
  ClassDescriptor b;
  b.id = 1;
  b.maxnref = 2;
  b.basesize = 20;
  b.instance_size = 20;
  b.tref = {2, 2};
  b.cref = {0, 0};
  Schema out = std::move(schema);
  EXPECT_TRUE(out.AddClass(std::move(a)).ok());
  EXPECT_TRUE(out.AddClass(std::move(b)).ok());
  return out;
}

class DatabaseTest : public ::testing::Test {
 protected:
  DatabaseTest() : db_(TestOptions()) { db_.SetSchema(TwoClassSchema()); }
  Database db_;
};

TEST_F(DatabaseTest, CreateObjectPopulatesExtentAndSlots) {
  auto oid = db_.CreateObject(0);
  ASSERT_TRUE(oid.ok());
  EXPECT_EQ(db_.object_count(), 1u);
  EXPECT_EQ(db_.schema().GetClass(0).iterator.size(), 1u);
  auto obj = db_.PeekObject(*oid);
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ(obj->class_id, 0u);
  EXPECT_EQ(obj->orefs.size(), 3u);
  EXPECT_TRUE(std::all_of(obj->orefs.begin(), obj->orefs.end(),
                          [](Oid o) { return o == kInvalidOid; }));
  EXPECT_EQ(obj->filler_size, 40u);
  EXPECT_EQ(obj->oid, *oid);
}

TEST_F(DatabaseTest, CreateObjectUnknownClassFails) {
  EXPECT_TRUE(db_.CreateObject(9).status().IsInvalidArgument());
}

TEST_F(DatabaseTest, SetReferenceMaintainsBackrefSymmetry) {
  auto a = db_.CreateObject(0);
  auto b = db_.CreateObject(1);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(db_.SetReference(*a, 0, *b).ok());

  auto source = db_.PeekObject(*a);
  auto target = db_.PeekObject(*b);
  ASSERT_TRUE(source.ok() && target.ok());
  EXPECT_EQ(source->orefs[0], *b);
  ASSERT_EQ(target->backrefs.size(), 1u);
  EXPECT_EQ(target->backrefs[0], *a);
}

TEST_F(DatabaseTest, RetargetingAReferenceUnlinksOldBackref) {
  auto a = db_.CreateObject(0);
  auto b = db_.CreateObject(1);
  auto c = db_.CreateObject(1);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_TRUE(db_.SetReference(*a, 0, *b).ok());
  ASSERT_TRUE(db_.SetReference(*a, 0, *c).ok());

  auto old_target = db_.PeekObject(*b);
  auto new_target = db_.PeekObject(*c);
  ASSERT_TRUE(old_target.ok() && new_target.ok());
  EXPECT_TRUE(old_target->backrefs.empty());
  ASSERT_EQ(new_target->backrefs.size(), 1u);
  EXPECT_EQ(new_target->backrefs[0], *a);
}

TEST_F(DatabaseTest, SetReferenceToNullClearsLink) {
  auto a = db_.CreateObject(0);
  auto b = db_.CreateObject(1);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(db_.SetReference(*a, 0, *b).ok());
  ASSERT_TRUE(db_.SetReference(*a, 0, kInvalidOid).ok());
  EXPECT_EQ(db_.PeekObject(*a)->orefs[0], kInvalidOid);
  EXPECT_TRUE(db_.PeekObject(*b)->backrefs.empty());
}

TEST_F(DatabaseTest, SetReferenceBadSlotFails) {
  auto a = db_.CreateObject(0);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(db_.SetReference(*a, 7, kInvalidOid).IsInvalidArgument());
}

TEST_F(DatabaseTest, DeleteObjectUnlinksBothDirections) {
  auto a = db_.CreateObject(0);
  auto b = db_.CreateObject(1);
  auto c = db_.CreateObject(0);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_TRUE(db_.SetReference(*a, 0, *b).ok());  // a -> b.
  ASSERT_TRUE(db_.SetReference(*b, 0, *c).ok());  // b -> c.

  ASSERT_TRUE(db_.DeleteObject(*b).ok());
  EXPECT_TRUE(db_.PeekObject(*b).status().IsNotFound());
  // a's slot nulled; c's backref removed; extent shrunk.
  EXPECT_EQ(db_.PeekObject(*a)->orefs[0], kInvalidOid);
  EXPECT_TRUE(db_.PeekObject(*c)->backrefs.empty());
  EXPECT_TRUE(db_.schema().GetClass(1).iterator.empty());
  EXPECT_EQ(db_.object_count(), 2u);
}

TEST_F(DatabaseTest, ColdRestartForcesMisses) {
  auto a = db_.CreateObject(0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(db_.ColdRestart().ok());
  db_.buffer_pool()->ResetStats();
  ASSERT_TRUE(db_.GetObject(*a).ok());
  EXPECT_GE(db_.buffer_pool()->stats().misses, 1u);
  EXPECT_EQ(db_.buffer_pool()->stats().hits, 0u);
}

// Observer spy recording the hook sequence.
class SpyObserver : public AccessObserver {
 public:
  void OnTransactionBegin() override { ++begins; }
  void OnTransactionEnd() override { ++ends; }
  void OnObjectAccess(Oid oid) override { accesses.push_back(oid); }
  void OnLinkCross(Oid from, Oid to, RefTypeId type, bool reverse) override {
    crossings.push_back({from, to, type, reverse});
  }

  struct Crossing {
    Oid from, to;
    RefTypeId type;
    bool reverse;
  };
  int begins = 0, ends = 0;
  std::vector<Oid> accesses;
  std::vector<Crossing> crossings;
};

TEST_F(DatabaseTest, ObserverSeesAccessesAndCrossings) {
  auto a = db_.CreateObject(0);
  auto b = db_.CreateObject(1);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(db_.SetReference(*a, 1, *b).ok());

  SpyObserver spy;
  db_.SetObserver(&spy);
  db_.BeginTransaction();
  ASSERT_TRUE(db_.GetObject(*a).ok());
  ASSERT_TRUE(db_.CrossLink(*a, *b, 2, false).ok());
  db_.EndTransaction();
  db_.SetObserver(nullptr);

  EXPECT_EQ(spy.begins, 1);
  EXPECT_EQ(spy.ends, 1);
  ASSERT_EQ(spy.accesses.size(), 2u);  // Root + crossed target.
  EXPECT_EQ(spy.accesses[0], *a);
  EXPECT_EQ(spy.accesses[1], *b);
  ASSERT_EQ(spy.crossings.size(), 1u);
  EXPECT_EQ(spy.crossings[0].from, *a);
  EXPECT_EQ(spy.crossings[0].to, *b);
  EXPECT_FALSE(spy.crossings[0].reverse);
}

TEST_F(DatabaseTest, PeekDoesNotNotifyObserver) {
  auto a = db_.CreateObject(0);
  ASSERT_TRUE(a.ok());
  SpyObserver spy;
  db_.SetObserver(&spy);
  ASSERT_TRUE(db_.PeekObject(*a).ok());
  db_.SetObserver(nullptr);
  EXPECT_TRUE(spy.accesses.empty());
}

TEST_F(DatabaseTest, PutObjectRoundTrips) {
  auto a = db_.CreateObject(0);
  auto b = db_.CreateObject(1);
  ASSERT_TRUE(a.ok() && b.ok());
  auto obj = db_.PeekObject(*a);
  ASSERT_TRUE(obj.ok());
  Object modified = std::move(obj).value();
  modified.orefs[2] = *b;  // Manual edit (bypasses backref upkeep).
  ASSERT_TRUE(db_.PutObject(modified).ok());
  EXPECT_EQ(db_.PeekObject(*a)->orefs[2], *b);
}

TEST_F(DatabaseTest, ManyObjectsSpillAcrossPagesAndSurvive) {
  std::vector<Oid> oids;
  for (int i = 0; i < 500; ++i) {
    auto oid = db_.CreateObject(i % 2 == 0 ? 0 : 1);
    ASSERT_TRUE(oid.ok());
    oids.push_back(*oid);
  }
  EXPECT_GT(db_.disk()->num_pages(), 10u);  // Spilled past the pool.
  ASSERT_TRUE(db_.ColdRestart().ok());
  for (size_t i = 0; i < oids.size(); ++i) {
    auto obj = db_.PeekObject(oids[i]);
    ASSERT_TRUE(obj.ok());
    EXPECT_EQ(obj->class_id, i % 2 == 0 ? 0u : 1u);
  }
}

}  // namespace
}  // namespace ocb
