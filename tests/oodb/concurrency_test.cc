// Concurrency smoke tests: the Database facade is shared by CLIENTN
// clients (paper §3.1); these tests hammer it from several threads and
// check structural invariants afterwards.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "clustering/dstc.h"
#include "engine/session.h"
#include "ocb/generator.h"
#include "oodb/database.h"

namespace ocb {
namespace {

StorageOptions TestOptions() {
  StorageOptions opts;
  opts.buffer_pool_pages = 32;
  return opts;
}

DatabaseParameters SmallDb() {
  DatabaseParameters p;
  p.num_classes = 4;
  p.num_objects = 300;
  p.max_nref = 3;
  p.seed = 91;
  return p;
}

TEST(ConcurrencyTest, ParallelReadsAreSafe) {
  Database db(TestOptions());
  ASSERT_TRUE(GenerateDatabase(SmallDb(), &db).ok());
  const std::vector<Oid> oids = db.object_store()->LiveOids();

  std::atomic<uint64_t> reads{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t]() {
      LewisPayneRng rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < 2000; ++i) {
        const Oid oid = oids[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(oids.size()) - 1))];
        auto obj = db.GetObject(oid);
        if (!obj.ok()) {
          failed = true;
          return;
        }
        ++reads;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed);
  EXPECT_EQ(reads.load(), 8000u);
}

TEST(ConcurrencyTest, ParallelWritesKeepBackrefSymmetry) {
  Database db(TestOptions());
  ASSERT_TRUE(GenerateDatabase(SmallDb(), &db).ok());
  const std::vector<Oid> oids = db.object_store()->LiveOids();

  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t]() {
      LewisPayneRng rng(static_cast<uint64_t>(t) + 100);
      for (int i = 0; i < 500; ++i) {
        const Oid from = oids[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(oids.size()) - 1))];
        auto obj = db.PeekObject(from);
        if (!obj.ok()) continue;
        // Retarget a random slot to a same-class-compatible object: use
        // the schema's declared target class extent.
        const ClassDescriptor& cls = db.schema().GetClass(obj->class_id);
        const uint32_t slot = static_cast<uint32_t>(
            rng.UniformInt(0, cls.maxnref - 1));
        if (cls.cref[slot] == kNullClass) continue;
        const auto extent = db.schema().GetClass(cls.cref[slot]).iterator;
        if (extent.empty()) continue;
        const Oid to = extent[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(extent.size()) - 1))];
        Status st = db.SetReference(from, slot, to);
        if (!st.ok() && !st.IsNoSpace()) {
          failed = true;
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_FALSE(failed);

  // Backref symmetry must hold after the storm.
  for (Oid oid : db.object_store()->LiveOids()) {
    auto obj = db.PeekObject(oid);
    ASSERT_TRUE(obj.ok());
    for (Oid target : obj->orefs) {
      if (target == kInvalidOid) continue;
      auto target_obj = db.PeekObject(target);
      ASSERT_TRUE(target_obj.ok());
      ASSERT_NE(std::find(target_obj->backrefs.begin(),
                          target_obj->backrefs.end(), oid),
                target_obj->backrefs.end())
          << oid << " -> " << target;
    }
  }
}

TEST(ConcurrencyTest, TransactionalStressKeepsInvariants) {
  // N client threads run full 2PL transactions (reads, reference
  // rewires, updates, deletes — with a share of deliberate aborts) over
  // one shared Database. Afterwards the structural invariants must hold:
  // backref symmetry in both directions and extent/store agreement.
  Database db(TestOptions());
  ASSERT_TRUE(GenerateDatabase(SmallDb(), &db).ok());

  constexpr int kThreads = 4;
  constexpr int kTxnsPerThread = 250;
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> aborted{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      auto session = db.OpenSession();
      LewisPayneRng rng(static_cast<uint64_t>(t) + 777);
      for (int i = 0; i < kTxnsPerThread && !failed; ++i) {
        auto txn = session.Begin();
        bool txn_ok = true;
        const int ops = static_cast<int>(rng.UniformInt(1, 4));
        for (int op = 0; op < ops && txn_ok; ++op) {
          const std::vector<Oid> live = db.LiveOidsSnapshot();
          if (live.empty()) break;
          const Oid oid = live[static_cast<size_t>(
              rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1))];
          const int kind = static_cast<int>(rng.UniformInt(0, 9));
          Status st = Status::OK();
          if (kind < 5) {  // Read.
            auto obj = txn.Get(oid);
            st = obj.ok() ? Status::OK() : obj.status();
          } else if (kind < 8) {  // Rewire a reference.
            auto obj = txn.Get(oid);
            if (!obj.ok()) {
              st = obj.status();
            } else {
              const ClassDescriptor& cls =
                  db.schema().GetClass(obj->class_id);
              const uint32_t slot = static_cast<uint32_t>(
                  rng.UniformInt(0, cls.maxnref - 1));
              if (cls.cref[slot] != kNullClass) {
                const auto extent = db.ExtentSnapshot(cls.cref[slot]);
                if (!extent.empty()) {
                  const Oid to = extent[static_cast<size_t>(rng.UniformInt(
                      0, static_cast<int64_t>(extent.size()) - 1))];
                  st = txn.SetReference(oid, slot, to);
                }
              }
            }
          } else if (kind == 8) {  // Delete.
            st = txn.Delete(oid);
          } else {  // Update in place.
            auto obj = txn.Get(oid);
            st = obj.ok() ? txn.Put(obj.value()) : obj.status();
          }
          if (st.IsAborted()) {
            txn_ok = false;  // Deadlock victim: roll back.
          } else if (!st.ok() && !st.IsNotFound() && !st.IsNoSpace()) {
            failed = true;
            txn_ok = false;
          }
        }
        // A slice of voluntary aborts exercises rollback under load.
        if (txn_ok && rng.Bernoulli(0.1)) txn_ok = false;
        if (txn_ok) {
          if (!txn.Commit().ok()) failed = true;
          ++committed;
        } else {
          if (!txn.Abort().ok()) failed = true;
          ++aborted;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_FALSE(failed);
  EXPECT_EQ(committed.load() + aborted.load(),
            static_cast<uint64_t>(kThreads) * kTxnsPerThread);
  EXPECT_GT(committed.load(), 0u);
  EXPECT_EQ(db.lock_manager()->locked_object_count(), 0u);

  // Backref symmetry, both directions, plus extent/store agreement.
  uint64_t live_count = 0;
  for (Oid oid : db.object_store()->LiveOids()) {
    ++live_count;
    auto obj = db.PeekObject(oid);
    ASSERT_TRUE(obj.ok());
    for (Oid target : obj->orefs) {
      if (target == kInvalidOid) continue;
      auto target_obj = db.PeekObject(target);
      ASSERT_TRUE(target_obj.ok()) << oid << " -> dead " << target;
      ASSERT_NE(std::find(target_obj->backrefs.begin(),
                          target_obj->backrefs.end(), oid),
                target_obj->backrefs.end())
          << oid << " -> " << target;
    }
    for (Oid referer : obj->backrefs) {
      auto referer_obj = db.PeekObject(referer);
      ASSERT_TRUE(referer_obj.ok()) << oid << " <- dead " << referer;
      ASSERT_NE(std::find(referer_obj->orefs.begin(),
                          referer_obj->orefs.end(), oid),
                referer_obj->orefs.end())
          << oid << " <- " << referer;
    }
    const auto& extent = db.schema().GetClass(obj->class_id).iterator;
    ASSERT_EQ(std::count(extent.begin(), extent.end(), oid), 1)
        << "extent membership of " << oid;
  }
  EXPECT_EQ(db.object_count(), live_count);
}

TEST(ConcurrencyTest, ReorganizeWhileReading) {
  // One thread reads continuously while another triggers a DSTC
  // reorganization; no read may observe corruption.
  Database db(TestOptions());
  ASSERT_TRUE(GenerateDatabase(SmallDb(), &db).ok());
  const std::vector<Oid> oids = db.object_store()->LiveOids();

  Dstc dstc;
  db.SetObserver(&dstc);
  // Feed the observer some crossings so Reorganize has work.
  for (int i = 0; i + 1 < 100; ++i) {
    dstc.OnLinkCross(oids[static_cast<size_t>(i)],
                     oids[static_cast<size_t>(i) + 1], 2, false);
  }
  dstc.OnTransactionEnd();

  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::thread reader([&]() {
    LewisPayneRng rng(55);
    while (!stop) {
      const Oid oid = oids[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(oids.size()) - 1))];
      auto obj = db.GetObject(oid);
      if (!obj.ok() && !obj.status().IsNotFound()) {
        failed = true;
        return;
      }
    }
  });
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(dstc.Reorganize(&db).ok());
  }
  stop = true;
  reader.join();
  db.SetObserver(nullptr);
  EXPECT_FALSE(failed);
  EXPECT_EQ(db.object_count(), oids.size());
}

}  // namespace
}  // namespace ocb
