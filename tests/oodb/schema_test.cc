// Tests for schema construction, cycle removal, and InstanceSize
// computation through the inheritance graph.

#include "oodb/schema.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace ocb {
namespace {

ClassDescriptor MakeClass(ClassId id, std::vector<RefTypeId> tref,
                          std::vector<ClassId> cref, uint32_t basesize = 50) {
  ClassDescriptor cls;
  cls.id = id;
  cls.maxnref = static_cast<uint32_t>(tref.size());
  cls.basesize = basesize;
  cls.instance_size = basesize;
  cls.tref = std::move(tref);
  cls.cref = std::move(cref);
  return cls;
}

TEST(SchemaTest, DefaultTraits) {
  auto traits = Schema::DefaultTraits(4);
  ASSERT_EQ(traits.size(), 4u);
  EXPECT_TRUE(traits[0].is_inheritance);
  EXPECT_TRUE(traits[0].acyclic);
  EXPECT_TRUE(traits[1].acyclic);
  EXPECT_FALSE(traits[1].is_inheritance);
  EXPECT_FALSE(traits[2].acyclic);
  EXPECT_FALSE(traits[3].acyclic);
}

TEST(SchemaTest, AddClassValidatesIdAndArrays) {
  Schema schema;
  schema.SetRefTypes(Schema::DefaultTraits(2));
  EXPECT_TRUE(schema.AddClass(MakeClass(0, {0}, {0})).ok());
  EXPECT_TRUE(
      schema.AddClass(MakeClass(5, {0}, {0})).IsInvalidArgument());
  ClassDescriptor bad = MakeClass(1, {0, 0}, {0});  // Mismatched arrays.
  bad.maxnref = 2;
  EXPECT_TRUE(schema.AddClass(std::move(bad)).IsInvalidArgument());
}

TEST(SchemaTest, RemoveCyclesBreaksSelfLoop) {
  Schema schema;
  schema.SetRefTypes(Schema::DefaultTraits(2));
  ASSERT_TRUE(schema.AddClass(MakeClass(0, {0}, {0})).ok());  // 0 -> 0.
  EXPECT_EQ(schema.RemoveCycles(), 1u);
  EXPECT_EQ(schema.GetClass(0).cref[0], kNullClass);
  EXPECT_FALSE(schema.HasForbiddenCycle());
}

TEST(SchemaTest, RemoveCyclesBreaksTwoCycle) {
  Schema schema;
  schema.SetRefTypes(Schema::DefaultTraits(2));
  ASSERT_TRUE(schema.AddClass(MakeClass(0, {0}, {1})).ok());
  ASSERT_TRUE(schema.AddClass(MakeClass(1, {0}, {0})).ok());
  EXPECT_EQ(schema.RemoveCycles(), 1u);  // Exactly one edge removed.
  EXPECT_FALSE(schema.HasForbiddenCycle());
  // Fig. 2 semantics: edge (0 -> 1) is checked first, and at that moment
  // class 0 is reachable from class 1 (the 1 -> 0 edge still exists), so
  // the first-checked edge is the one suppressed.
  EXPECT_EQ(schema.GetClass(0).cref[0], kNullClass);
  EXPECT_EQ(schema.GetClass(1).cref[0], 0u);
}

TEST(SchemaTest, CyclicTypesAreLeftAlone) {
  Schema schema;
  schema.SetRefTypes(Schema::DefaultTraits(3));
  // Type 2 is a plain association: cycles allowed.
  ASSERT_TRUE(schema.AddClass(MakeClass(0, {2}, {1})).ok());
  ASSERT_TRUE(schema.AddClass(MakeClass(1, {2}, {0})).ok());
  EXPECT_EQ(schema.RemoveCycles(), 0u);
  EXPECT_EQ(schema.GetClass(0).cref[0], 1u);
  EXPECT_EQ(schema.GetClass(1).cref[0], 0u);
}

TEST(SchemaTest, CycleDetectionIsPerType) {
  Schema schema;
  schema.SetRefTypes(Schema::DefaultTraits(2));
  // 0 -(inh)-> 1 and 1 -(comp)-> 0: different acyclic types, no cycle in
  // either graph, so both edges survive.
  ASSERT_TRUE(schema.AddClass(MakeClass(0, {0}, {1})).ok());
  ASSERT_TRUE(schema.AddClass(MakeClass(1, {1}, {0})).ok());
  EXPECT_EQ(schema.RemoveCycles(), 0u);
  EXPECT_FALSE(schema.HasForbiddenCycle());
}

TEST(SchemaTest, InstanceSizeAccumulatesDownInheritance) {
  Schema schema;
  schema.SetRefTypes(Schema::DefaultTraits(2));
  // 0 -(inh)-> 1 -(inh via 1's slot)-> 2 : class 2 inherits from 1 which
  // inherits from 0.
  ASSERT_TRUE(schema.AddClass(MakeClass(0, {0}, {1}, 100)).ok());
  ASSERT_TRUE(schema.AddClass(MakeClass(1, {0}, {2}, 30)).ok());
  ASSERT_TRUE(schema.AddClass(MakeClass(2, {1}, {kNullClass}, 7)).ok());
  schema.RemoveCycles();
  schema.ComputeInstanceSizes();
  EXPECT_EQ(schema.GetClass(0).instance_size, 100u);
  EXPECT_EQ(schema.GetClass(1).instance_size, 130u);   // 30 + 100.
  EXPECT_EQ(schema.GetClass(2).instance_size, 137u);   // 7 + 30 + 100.
}

TEST(SchemaTest, DiamondInheritanceCountsAncestorsOnce) {
  Schema schema;
  schema.SetRefTypes(Schema::DefaultTraits(2));
  //      0 (100)
  //     /  \.
  //    1    2    (each inherits from 0)
  //     \  /.
  //      3       (inherits from both 1 and 2)
  ASSERT_TRUE(schema.AddClass(MakeClass(0, {0, 0}, {1, 2}, 100)).ok());
  ASSERT_TRUE(schema.AddClass(MakeClass(1, {0}, {3}, 10)).ok());
  ASSERT_TRUE(schema.AddClass(MakeClass(2, {0}, {3}, 20)).ok());
  ASSERT_TRUE(
      schema.AddClass(MakeClass(3, {1}, {kNullClass}, 1)).ok());
  schema.RemoveCycles();
  schema.ComputeInstanceSizes();
  // 3 inherits 0 only once despite the diamond: 1 + 10 + 20 + 100 = 131.
  EXPECT_EQ(schema.GetClass(3).instance_size, 131u);
}

TEST(SchemaTest, ValidateCatchesCorruptTargets) {
  Schema schema;
  schema.SetRefTypes(Schema::DefaultTraits(2));
  ASSERT_TRUE(schema.AddClass(MakeClass(0, {0}, {0})).ok());
  schema.GetMutableClass(0).cref[0] = 57;  // Unknown class.
  EXPECT_TRUE(schema.Validate().IsCorruption());
  schema.GetMutableClass(0).cref[0] = kNullClass;
  schema.GetMutableClass(0).tref[0] = 9;  // Unknown type.
  EXPECT_TRUE(schema.Validate().IsCorruption());
}

// Property: on random dense schemas, RemoveCycles always leaves all
// acyclic-typed graphs cycle-free, and ComputeInstanceSizes never shrinks
// a class below its own basesize.
class SchemaFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SchemaFuzz, RemoveCyclesAlwaysLeavesDag) {
  LewisPayneRng rng(GetParam());
  Schema schema;
  const uint16_t nreft = 4;
  schema.SetRefTypes(Schema::DefaultTraits(nreft));
  const ClassId nc = 25;
  for (ClassId i = 0; i < nc; ++i) {
    std::vector<RefTypeId> tref;
    std::vector<ClassId> cref;
    const uint32_t maxnref = static_cast<uint32_t>(rng.UniformInt(1, 8));
    for (uint32_t j = 0; j < maxnref; ++j) {
      tref.push_back(static_cast<RefTypeId>(rng.UniformInt(0, nreft - 1)));
      cref.push_back(static_cast<ClassId>(rng.UniformInt(0, nc - 1)));
    }
    ASSERT_TRUE(schema
                    .AddClass(MakeClass(i, std::move(tref), std::move(cref),
                                        static_cast<uint32_t>(
                                            rng.UniformInt(10, 200))))
                    .ok());
  }
  schema.RemoveCycles();
  EXPECT_FALSE(schema.HasForbiddenCycle());
  EXPECT_TRUE(schema.Validate().ok());
  schema.ComputeInstanceSizes();
  for (ClassId i = 0; i < nc; ++i) {
    EXPECT_GE(schema.GetClass(i).instance_size, schema.GetClass(i).basesize);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchemaFuzz,
                         ::testing::Values(10u, 20u, 30u, 40u, 50u));

}  // namespace
}  // namespace ocb
