// Tests for whole-database snapshot save/load.

#include "oodb/snapshot.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "engine/session.h"
#include "ocb/generator.h"
#include "ocb/protocol.h"

namespace ocb {
namespace {

StorageOptions TestOptions(size_t page_size = 4096) {
  StorageOptions opts;
  opts.page_size = page_size;
  opts.buffer_pool_pages = 32;
  return opts;
}

DatabaseParameters SmallDb() {
  DatabaseParameters p;
  p.num_classes = 5;
  p.num_objects = 300;
  p.max_nref = 4;
  p.seed = 7;
  return p;
}

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

class SnapshotTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = TempPath("ocb_snapshot_test.snap");
};

TEST_F(SnapshotTest, RoundTripPreservesEveryObject) {
  Database original(TestOptions());
  ASSERT_TRUE(GenerateDatabase(SmallDb(), &original).ok());
  ASSERT_TRUE(SaveSnapshot(&original, path_).ok());

  Database loaded(TestOptions());
  ASSERT_TRUE(LoadSnapshot(&loaded, path_).ok());

  ASSERT_EQ(loaded.object_count(), original.object_count());
  ASSERT_EQ(loaded.schema().class_count(), original.schema().class_count());
  for (Oid oid : original.object_store()->LiveOids()) {
    auto a = original.PeekObject(oid);
    auto b = loaded.PeekObject(oid);
    ASSERT_TRUE(a.ok() && b.ok()) << "oid " << oid;
    ASSERT_EQ(a->class_id, b->class_id);
    ASSERT_EQ(a->orefs, b->orefs);
    ASSERT_EQ(a->backrefs, b->backrefs);
  }
  // Physical placement is preserved too (a snapshot must not undo
  // clustering).
  for (Oid oid : original.object_store()->LiveOids()) {
    EXPECT_EQ(original.object_store()->Locate(oid)->page_id,
              loaded.object_store()->Locate(oid)->page_id);
  }
}

TEST_F(SnapshotTest, SchemaAndExtentsSurvive) {
  Database original(TestOptions());
  ASSERT_TRUE(GenerateDatabase(SmallDb(), &original).ok());
  ASSERT_TRUE(SaveSnapshot(&original, path_).ok());

  Database loaded(TestOptions());
  ASSERT_TRUE(LoadSnapshot(&loaded, path_).ok());
  for (ClassId c = 0; c < original.schema().class_count(); ++c) {
    const ClassDescriptor& x = original.schema().GetClass(c);
    const ClassDescriptor& y = loaded.schema().GetClass(c);
    EXPECT_EQ(x.maxnref, y.maxnref);
    EXPECT_EQ(x.basesize, y.basesize);
    EXPECT_EQ(x.instance_size, y.instance_size);
    EXPECT_EQ(x.tref, y.tref);
    EXPECT_EQ(x.cref, y.cref);
    EXPECT_EQ(x.iterator, y.iterator);
  }
}

TEST_F(SnapshotTest, LoadedDatabaseRunsWorkloads) {
  Database original(TestOptions());
  ASSERT_TRUE(GenerateDatabase(SmallDb(), &original).ok());
  ASSERT_TRUE(SaveSnapshot(&original, path_).ok());

  Database loaded(TestOptions());
  ASSERT_TRUE(LoadSnapshot(&loaded, path_).ok());
  WorkloadParameters w;
  w.cold_transactions = 20;
  w.hot_transactions = 50;
  w.set_depth = 2;
  w.simple_depth = 2;
  ProtocolRunner runner(&loaded, w);
  auto metrics = runner.Run();
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->warm.global.transactions, 50u);
}

TEST_F(SnapshotTest, LoadedDatabaseAcceptsNewObjects) {
  Database original(TestOptions());
  ASSERT_TRUE(GenerateDatabase(SmallDb(), &original).ok());
  const Oid max_before = original.object_store()->max_oid();
  ASSERT_TRUE(SaveSnapshot(&original, path_).ok());

  Database loaded(TestOptions());
  ASSERT_TRUE(LoadSnapshot(&loaded, path_).ok());
  auto fresh = loaded.CreateObject(0);
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT(*fresh, max_before);  // Oid allocation continues, no reuse.
}

TEST_F(SnapshotTest, SaveRefusesWhileTransactionsHoldLocks) {
  // A transaction with an uncommitted write (X lock held) makes the page
  // images torn; SaveSnapshot must refuse rather than persist them.
  Database db(TestOptions());
  ASSERT_TRUE(GenerateDatabase(SmallDb(), &db).ok());
  const Oid victim = db.object_store()->LiveOids().front();

  auto txn = db.OpenSession().Begin();
  auto obj = db.PeekObject(victim);
  ASSERT_TRUE(obj.ok());
  ASSERT_TRUE(txn.Put(obj.value()).ok());  // X lock held.
  EXPECT_TRUE(SaveSnapshot(&db, path_).IsInvalidArgument());

  // Quiesced (committed), the same save succeeds and loads back clean.
  ASSERT_TRUE(txn.Commit().ok());
  ASSERT_TRUE(SaveSnapshot(&db, path_).ok());
  Database loaded(TestOptions());
  ASSERT_TRUE(LoadSnapshot(&loaded, path_).ok());
  EXPECT_EQ(loaded.object_count(), db.object_count());
}

TEST_F(SnapshotTest, SaveRefusesWhileReaderTransactionHoldsSLocks) {
  // Even a pure reader on the locking path pins the lock table; the
  // snapshot gate keys on held locks, not on writes.
  Database db(TestOptions());
  ASSERT_TRUE(GenerateDatabase(SmallDb(), &db).ok());
  const Oid any = db.object_store()->LiveOids().front();

  auto txn = db.OpenSession().Begin();
  ASSERT_TRUE(txn.Get(any).ok());  // S lock held.
  EXPECT_TRUE(SaveSnapshot(&db, path_).IsInvalidArgument());
  ASSERT_TRUE(txn.Abort().ok());
  EXPECT_TRUE(SaveSnapshot(&db, path_).ok());
}

TEST_F(SnapshotTest, SaveWaitsOutInFlightPagePins) {
  // Regression: snapshot during a pinned read. A raw page handle (the
  // substrate's equivalent of a reader mid-fetch) holds a pin; SaveSnapshot
  // quiesces, so it must park until the pin drains instead of flushing
  // around a latched frame — and then succeed.
  Database db(TestOptions());
  ASSERT_TRUE(GenerateDatabase(SmallDb(), &db).ok());

  std::atomic<bool> released{false};
  std::atomic<bool> pinned{false};
  std::thread reader([&]() {
    auto handle = db.buffer_pool()->FetchPage(0, LatchMode::kShared);
    ASSERT_TRUE(handle.ok());
    pinned = true;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    released = true;
    // Handle drops here; only now may the save's quiesce proceed.
  });
  while (!pinned.load()) std::this_thread::yield();
  ASSERT_TRUE(SaveSnapshot(&db, path_).ok());
  // The save can only have completed after the pin drained.
  EXPECT_TRUE(released.load());
  reader.join();

  Database loaded(TestOptions());
  ASSERT_TRUE(LoadSnapshot(&loaded, path_).ok());
  EXPECT_EQ(loaded.object_count(), db.object_count());
}

TEST_F(SnapshotTest, RejectsNonEmptyTarget) {
  Database original(TestOptions());
  ASSERT_TRUE(GenerateDatabase(SmallDb(), &original).ok());
  ASSERT_TRUE(SaveSnapshot(&original, path_).ok());
  EXPECT_TRUE(LoadSnapshot(&original, path_).IsInvalidArgument());
}

TEST_F(SnapshotTest, RejectsPageSizeMismatch) {
  Database original(TestOptions(4096));
  ASSERT_TRUE(GenerateDatabase(SmallDb(), &original).ok());
  ASSERT_TRUE(SaveSnapshot(&original, path_).ok());
  Database other(TestOptions(8192));
  EXPECT_TRUE(LoadSnapshot(&other, path_).IsInvalidArgument());
}

TEST_F(SnapshotTest, RejectsGarbageFile) {
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("definitely not a snapshot", f);
  std::fclose(f);
  Database db(TestOptions());
  EXPECT_TRUE(LoadSnapshot(&db, path_).IsCorruption());
}

TEST_F(SnapshotTest, RejectsTruncatedFile) {
  Database original(TestOptions());
  ASSERT_TRUE(GenerateDatabase(SmallDb(), &original).ok());
  ASSERT_TRUE(SaveSnapshot(&original, path_).ok());
  // Truncate the file to half.
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path_.c_str(), size / 2), 0);
  Database db(TestOptions());
  EXPECT_TRUE(LoadSnapshot(&db, path_).IsCorruption());
}

TEST_F(SnapshotTest, MissingFileIsIOError) {
  Database db(TestOptions());
  EXPECT_TRUE(LoadSnapshot(&db, TempPath("missing.snap")).IsIOError());
}

}  // namespace
}  // namespace ocb
