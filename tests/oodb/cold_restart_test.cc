// ColdRestart contract tests: restarting the cache while transactions
// are in flight must be a typed refusal (mirroring SaveSnapshot), never
// undefined behavior — on the single store and on every shard of a
// sharded deployment.

#include <gtest/gtest.h>

#include "engine/session.h"
#include "oodb/database.h"
#include "sharding/sharded_database.h"

namespace ocb {
namespace {

StorageOptions TestOptions() {
  StorageOptions opts;
  opts.page_size = 1024;
  opts.buffer_pool_pages = 32;
  return opts;
}

Schema OneClassSchema() {
  Schema schema;
  schema.SetRefTypes(Schema::DefaultTraits(2));
  ClassDescriptor a;
  a.id = 0;
  a.maxnref = 2;
  a.basesize = 24;
  a.instance_size = 24;
  a.tref = {1, 1};
  a.cref = {0, 0};
  Schema out = std::move(schema);
  EXPECT_TRUE(out.AddClass(std::move(a)).ok());
  return out;
}

TEST(ColdRestartTest, RefusesWhileWriterHoldsLocks) {
  Database db(TestOptions());
  db.SetSchema(OneClassSchema());
  auto session = db.OpenSession();
  auto txn = session.Begin();
  ASSERT_TRUE(txn.Create(0).ok());  // X lock held until commit.
  EXPECT_TRUE(db.ColdRestart().IsInvalidArgument());
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_TRUE(db.ColdRestart().ok());
}

TEST(ColdRestartTest, RefusesWhileSnapshotReaderIsPinned) {
  Database db(TestOptions());
  db.SetSchema(OneClassSchema());
  ASSERT_TRUE(db.CreateObject(0).ok());
  auto session = db.OpenSession();
  TxnOptions ro;
  ro.read_only = true;
  auto reader = session.Begin(ro);
  ASSERT_TRUE(reader.read_only());  // MVCC ReadView pinned.
  EXPECT_TRUE(db.ColdRestart().IsInvalidArgument());
  ASSERT_TRUE(reader.Commit().ok());
  EXPECT_TRUE(db.ColdRestart().ok());
}

TEST(ColdRestartTest, ShardedRefusesBeforeRestartingAnyShard) {
  // The sharded form must refuse UP FRONT: with only per-shard refusal a
  // busy shard k would leave shards 0..k-1 already cold — half the
  // deployment restarted, half not.
  ShardedDatabase db(TestOptions(), 4);
  db.SetSchema(OneClassSchema());
  auto session = db.OpenSession();
  auto txn = session.Begin();
  ASSERT_TRUE(txn.Create(0).ok());
  ASSERT_TRUE(txn.Create(0).ok());  // Second shard joins (round-robin).
  const Status st = db.ColdRestart();
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("shard"), std::string::npos) << st.message();
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_TRUE(db.ColdRestart().ok());
}

TEST(ColdRestartTest, ShardedRefusesWhileGlobalSnapshotIsOpen) {
  ShardedDatabase db(TestOptions(), 4);
  db.SetSchema(OneClassSchema());
  ASSERT_TRUE(db.CreateObject(0).ok());
  auto session = db.OpenSession();
  TxnOptions ro;
  ro.read_only = true;
  auto reader = session.Begin(ro);  // ReadView pinned on EVERY shard.
  ASSERT_TRUE(reader.read_only());
  EXPECT_TRUE(db.ColdRestart().IsInvalidArgument());
  ASSERT_TRUE(reader.Commit().ok());
  EXPECT_TRUE(db.ColdRestart().ok());
}

}  // namespace
}  // namespace ocb
