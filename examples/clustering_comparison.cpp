/// \file clustering_comparison.cpp
/// \brief The paper's motivating scenario (§1/§5): compare object
///        clustering policies on the same basis.
///
/// Models an engineering-design application — a team of engineers who
/// repeatedly browse a set of active designs (stereotyped deep traversals
/// plus occasional cross-cutting queries) — and measures how each
/// clustering policy changes the I/O bill, including the clustering
/// overhead the policy pays to earn its gain.
///
/// Build & run:
///   ./build/examples/clustering_comparison

#include <cstdio>
#include <memory>
#include <vector>

#include "clustering/dfs_placement.h"
#include "clustering/dstc.h"
#include "clustering/greedy_graph.h"
#include "util/format.h"
#include "ocb/experiment.h"

int main() {
  using namespace ocb;

  // The "engineering database": 15000 design objects, 12 classes with
  // deep composition hierarchies, references local to each design (the
  // RefZone models one design's sub-tree being created together).
  ExperimentConfig config;
  config.preset.name = "engineering-design";
  DatabaseParameters& dbp = config.preset.database;
  dbp.num_classes = 12;
  dbp.num_objects = 15000;
  dbp.max_nref = 6;
  dbp.base_size = 60;
  dbp.dist4_object_refs = DistributionSpec::SpecialRefZone(150, 0.9);
  dbp.seed = 2026;

  // The workload: engineers iterate over ~12 active designs — depth-first
  // browsing (60%), component hierarchies (25%), exploratory random walks
  // (15%).
  WorkloadParameters& wl = config.preset.workload;
  wl.p_set = 0.0;
  wl.p_simple = 0.60;
  wl.p_hierarchy = 0.25;
  wl.p_stochastic = 0.15;
  wl.simple_depth = 5;
  wl.hierarchy_depth = 6;
  wl.stochastic_depth = 30;
  wl.root_pool_size = 12;  // The active designs.
  wl.cold_transactions = 150;
  wl.hot_transactions = 500;
  wl.seed = 2027;

  config.storage.buffer_pool_pages = 192;  // DB spills well past memory.

  std::printf("Scenario: engineering-design browsing over %llu objects\n"
              "Policies are compared on identical databases and identical\n"
              "transaction sequences (same seeds).\n\n",
              (unsigned long long)dbp.num_objects);

  std::vector<std::unique_ptr<ClusteringPolicy>> policies;
  policies.push_back(std::make_unique<NoClustering>());
  policies.push_back(std::make_unique<Dstc>());
  policies.push_back(std::make_unique<GreedyGraphPartitioning>());
  policies.push_back(std::make_unique<DfsPlacement>());

  TextTable table({"Policy", "I/Os before", "I/Os after", "Gain",
                   "Overhead I/Os", "Break-even (txns)"});
  for (auto& policy : policies) {
    auto result = RunBeforeAfterExperiment(config, policy.get());
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", policy->name().c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    // How many transactions until the per-transaction savings repay the
    // reorganization cost?
    const double saved =
        result->ios_before() - result->ios_after();
    const std::string break_even =
        saved <= 0.0 ? "never"
                     : Format("%.0f", static_cast<double>(
                                          result->clustering_overhead_io) /
                                          saved);
    table.AddRow({result->policy_name,
                  Format("%.1f", result->ios_before()),
                  Format("%.1f", result->ios_after()),
                  Format("%.2f", result->gain_factor()),
                  Format("%llu",
                         (unsigned long long)result->clustering_overhead_io),
                  break_even});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nReading the table: 'gain' is the paper's before/after I/O ratio;\n"
      "'break-even' is how many further transactions amortize the\n"
      "reorganization I/O — the overhead the paper insists must be\n"
      "weighed against the gain (§1).\n");
  return 0;
}
