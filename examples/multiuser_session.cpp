/// \file multiuser_session.cpp
/// \brief The canonical Session API walkthrough + OCB's multi-user mode
///        (paper §3.1: supported "in a very simple way, which is almost
///        unique" among OODB benchmarks).
///
/// Part 1 drives the engine directly through the Session API v2:
/// RAII transactions (auto-abort on scope exit), batched GetMany /
/// WriteBatch operations, an engine-side traversal, MVCC snapshot
/// readers, and the group-commit pipeline behind Commit().
///
/// Part 2 runs the classic CLIENTN comparison: several clients share one
/// database, one buffer pool and one disk, each running the full
/// cold/warm protocol concurrently (every client thread speaks the same
/// Session API through the workload executor).
///
/// Build & run:
///   ./build/examples/multiuser_session
///
/// The run ends with a dump of the engine's metrics registry (every
/// counter/gauge/histogram the observability layer collected — lock
/// waits, latch waits, buffer-pool traffic, group-commit batching).
/// Set OCB_TRACE=/tmp/trace.json to also record a Chrome/Perfetto trace
/// of every transaction span (open in ui.perfetto.dev).

#include <cstdio>

#include "engine/session.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "ocb/client.h"
#include "ocb/generator.h"
#include "ocb/presets.h"
#include "util/format.h"

int main() {
  using namespace ocb;

  obs::TraceRecorder::InitFromEnvironment();

  StorageOptions storage;
  storage.buffer_pool_pages = 256;
  Database db(storage);

  OcbPreset preset = presets::Default();
  preset.database.num_objects = 6000;
  preset.database.seed = 71;
  auto generation = GenerateDatabase(preset.database, &db);
  if (!generation.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 generation.status().ToString().c_str());
    return 1;
  }
  std::printf("shared database: %llu objects on %llu pages\n\n",
              (unsigned long long)generation->objects_created,
              (unsigned long long)generation->data_pages);

  // --- Part 1: the Session API ------------------------------------------

  // A Session is a client's connection: cheap, holds the TxnOptions
  // defaults its transactions begin with.
  Session session = db.OpenSession();
  const std::vector<Oid> roots = db.LiveOidsSnapshot();

  {
    // An RAII transaction: strict 2PL underneath, group commit behind
    // Commit(). Everything is a typed Status — no bools, no UB.
    auto txn = session.Begin();
    auto root = txn.Get(roots[0]);
    if (!root.ok()) return 1;

    // Batched read: one call, ONE sorted lock-footprint pass.
    auto neighbourhood =
        txn.GetMany(std::vector<Oid>(roots.begin(), roots.begin() + 16));
    std::printf("GetMany pulled %zu objects in one engine call\n",
                neighbourhood.ok() ? neighbourhood->size() : 0);

    // Batched writes: the statically known footprint is X-locked in one
    // ascending pass, then the operations run in order.
    WriteBatch batch;
    batch.SetReference(root->oid, 0, roots[1]);
    batch.SetReference(root->oid, 1, roots[2]);
    auto applied = txn.Apply(std::move(batch));
    std::printf("WriteBatch applied %llu/%zu operations\n",
                applied.ok() ? (unsigned long long)applied->applied : 0ULL,
                applied.ok() ? applied->statuses.size() : 0);

    // A whole traversal engine-side, in one call.
    TraversePolicy policy;
    policy.kind = TraverseKind::kDepthFirst;
    auto walked = txn.Traverse(root.value(), 3, policy);
    std::printf("Traverse touched %llu objects below the root\n",
                walked.ok() ? (unsigned long long)*walked : 0ULL);

    Status commit = txn.Commit();  // Rides the group-commit pipeline.
    std::printf("commit: %s; double commit: %s\n",
                commit.ToString().c_str(),
                txn.Commit().ToString().c_str());  // Typed refusal.
  }

  const Oid slot2_before = db.PeekObject(roots[0])->orefs[2];
  {
    // RAII auto-abort: scope exit without Commit rolls everything back
    // (locks released, undo replayed, pending MVCC versions sealed).
    auto doomed = session.Begin();
    (void)doomed.SetReference(roots[0], 2, roots[3]);
  }
  std::printf("auto-abort restored slot 2: %s\n\n",
              db.PeekObject(roots[0])->orefs[2] == slot2_before ? "yes"
                                                                : "NO");

  {
    // MVCC snapshot reader: pinned ReadView, no locks, never blocks.
    TxnOptions ro;
    ro.read_only = true;
    auto reader = session.Begin(ro);
    auto scan = reader.GetMany(
        std::vector<Oid>(roots.begin(), roots.begin() + 32));
    std::printf("snapshot reader read %zu objects, lock wait %llu ns\n\n",
                scan.ok() ? scan->size() : 0,
                (unsigned long long)reader.lock_wait_nanos());
    (void)reader.Commit();
  }

  // --- Part 2: CLIENTN clients over one shared engine -------------------

  TextTable table({"CLIENTN", "Transactions", "Device I/Os / txn",
                   "Hit ratio", "Throughput (txn/s)"});
  for (uint32_t clients : {1u, 4u}) {
    if (!db.ColdRestart().ok()) return 1;
    db.buffer_pool()->ResetStats();

    WorkloadParameters workload = preset.workload;
    workload.client_count = clients;
    workload.cold_transactions = 100;
    workload.hot_transactions = 300;
    workload.seed = 73;

    const uint64_t reads_before =
        db.disk()->counters(IoScope::kTransaction).reads;
    auto report = RunMultiClient(&db, workload);
    if (!report.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    const uint64_t reads =
        db.disk()->counters(IoScope::kTransaction).reads - reads_before;
    const uint64_t txns = report->merged.cold.global.transactions +
                          report->merged.warm.global.transactions;
    table.AddRow({Format("%u", clients),
                  Format("%llu", (unsigned long long)txns),
                  Format("%.2f",
                         static_cast<double>(reads) /
                             static_cast<double>(txns)),
                  Format("%.3f", report->merged.warm.buffer_hit_ratio()),
                  Format("%.0f", report->throughput_tps())});
  }
  std::printf("%s", table.ToString().c_str());
  const GroupCommitStats gc = db.group_commit_stats();
  std::printf(
      "\ngroup commit: %llu commits over %llu batches (largest %llu)\n",
      (unsigned long long)gc.commits, (unsigned long long)gc.batches,
      (unsigned long long)gc.max_batch_formed);
  std::printf(
      "\nFour clients share the cache: pages one client faults in are hits\n"
      "for the others, so device I/Os per transaction *drop* as CLIENTN\n"
      "grows, while object-lock conflicts bound throughput (the big lock\n"
      "is long gone — see ARCHITECTURE.md). Every client thread speaks\n"
      "the Session API: RAII transactions, batched operations, commits\n"
      "riding the group-commit pipeline.\n");

  // Everything above was also measured: the registry's gauges read the
  // engine's own atomic counters, and the lock/latch/commit histograms
  // were fed by the instrumented hot paths.
  std::printf("\n--- metrics registry snapshot ---\n%s",
              obs::MetricsRegistry::Global().Snapshot().ToString().c_str());
  const std::string trace_path = obs::TraceRecorder::DumpToEnvPath();
  if (!trace_path.empty()) {
    std::printf("trace written: %s (open in ui.perfetto.dev)\n",
                trace_path.c_str());
  }
  return 0;
}
