/// \file multiuser_session.cpp
/// \brief OCB's multi-user mode (paper §3.1: supported "in a very simple
///        way, which is almost unique" among OODB benchmarks).
///
/// Several clients share one database, one buffer pool and one disk; each
/// runs the full cold/warm protocol concurrently. The example contrasts a
/// single-user run with a four-user run on the same database and shows
/// the shared-cache effect on per-transaction I/O.
///
/// Build & run:
///   ./build/examples/multiuser_session

#include <cstdio>

#include "ocb/client.h"
#include "ocb/generator.h"
#include "util/format.h"
#include "ocb/presets.h"

int main() {
  using namespace ocb;

  StorageOptions storage;
  storage.buffer_pool_pages = 256;
  Database db(storage);

  OcbPreset preset = presets::Default();
  preset.database.num_objects = 6000;
  preset.database.seed = 71;
  auto generation = GenerateDatabase(preset.database, &db);
  if (!generation.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 generation.status().ToString().c_str());
    return 1;
  }
  std::printf("shared database: %llu objects on %llu pages\n\n",
              (unsigned long long)generation->objects_created,
              (unsigned long long)generation->data_pages);

  TextTable table({"CLIENTN", "Transactions", "Device I/Os / txn",
                   "Hit ratio", "Throughput (txn/s)"});
  for (uint32_t clients : {1u, 4u}) {
    if (!db.ColdRestart().ok()) return 1;
    db.buffer_pool()->ResetStats();

    WorkloadParameters workload = preset.workload;
    workload.client_count = clients;
    workload.cold_transactions = 100;
    workload.hot_transactions = 300;
    workload.seed = 73;

    const uint64_t reads_before =
        db.disk()->counters(IoScope::kTransaction).reads;
    auto report = RunMultiClient(&db, workload);
    if (!report.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    const uint64_t reads =
        db.disk()->counters(IoScope::kTransaction).reads - reads_before;
    const uint64_t txns = report->merged.cold.global.transactions +
                          report->merged.warm.global.transactions;
    table.AddRow({Format("%u", clients),
                  Format("%llu", (unsigned long long)txns),
                  Format("%.2f",
                         static_cast<double>(reads) /
                             static_cast<double>(txns)),
                  Format("%.3f", report->merged.warm.buffer_hit_ratio()),
                  Format("%.0f", report->throughput_tps())});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nFour clients share the cache: pages one client faults in are hits\n"
      "for the others, so device I/Os per transaction *drop* as CLIENTN\n"
      "grows, while object-lock conflicts bound throughput (the big lock\n"
      "is long gone — see ARCHITECTURE.md) — exactly the trade-off a\n"
      "multi-user OODB benchmark exists to expose.\n");
  return 0;
}
