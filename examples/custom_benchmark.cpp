/// \file custom_benchmark.cpp
/// \brief OCB's genericity in practice (paper §3.1: "since there exists no
///        canonical OODB application, this is an important feature").
///
/// Models a *document-management system* that none of the canned
/// benchmarks fits: a few very large document objects, many small
/// annotation objects, hot documents that everyone reads (zipfian roots),
/// and shallow link-following. Everything is expressed purely through OCB
/// parameters — no new benchmark code.
///
/// Build & run:
///   ./build/examples/custom_benchmark

#include <cstdio>

#include "ocb/generator.h"
#include "util/format.h"
#include "ocb/protocol.h"

int main() {
  using namespace ocb;

  // ---- Database: 4 classes with wildly different shapes ----
  //  class 0: Folder      (few refs, tiny payload)
  //  class 1: Document    (large payload, refs to folders/docs)
  //  class 2: Annotation  (tiny, points at documents)
  //  class 3: Attachment  (large blob-ish payload)
  DatabaseParameters dbp;
  dbp.num_classes = 4;
  dbp.per_class_max_nref = {8, 4, 1, 1};
  dbp.per_class_base_size = {24, 1200, 40, 2000};
  dbp.num_objects = 10000;
  dbp.num_ref_types = 3;
  // Documents cluster by folder: locality in creation order.
  dbp.dist4_object_refs = DistributionSpec::SpecialRefZone(80, 0.85);
  // Most objects are annotations/documents, few folders/attachments:
  // a zipf over class ids (0..3) skews membership toward low ids, so
  // order the classes accordingly? No — membership skew toward
  // *annotations* is wanted, so draw class via zipf and map 0 -> class 2.
  dbp.dist3_objects_in_classes = DistributionSpec::Zipf(0.8);
  dbp.seed = 404;

  // ---- Workload: hot-document reading ----
  WorkloadParameters wl;
  wl.p_set = 0.5;         // "Open document with annotations" = 1-level fan.
  wl.p_simple = 0.2;      // Folder drill-down.
  wl.p_hierarchy = 0.0;
  wl.p_stochastic = 0.3;  // Link-hopping readers.
  wl.set_depth = 1;
  wl.simple_depth = 3;
  wl.stochastic_depth = 12;
  wl.dist5_roots = DistributionSpec::Zipf(0.99);  // Hot documents.
  wl.cold_transactions = 150;
  wl.hot_transactions = 600;
  wl.seed = 405;

  StorageOptions storage;
  storage.buffer_pool_pages = 384;

  std::printf("Custom application: document-management system\n\n");
  std::printf("%s\n", dbp.ToTableString().c_str());
  std::printf("%s\n", wl.ToTableString().c_str());

  Database db(storage);
  auto generation = GenerateDatabase(dbp, &db);
  if (!generation.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 generation.status().ToString().c_str());
    return 1;
  }
  std::printf("database: %llu objects, %s on %llu pages; per-class "
              "extents:",
              (unsigned long long)generation->objects_created,
              HumanBytes(generation->database_bytes).c_str(),
              (unsigned long long)generation->data_pages);
  for (ClassId c = 0; c < db.schema().class_count(); ++c) {
    std::printf(" c%u=%zu", c, db.schema().GetClass(c).iterator.size());
  }
  std::printf("\n\n");

  if (!db.ColdRestart().ok()) return 1;
  ProtocolRunner runner(&db, wl);
  auto metrics = runner.Run();
  if (!metrics.ok()) {
    std::fprintf(stderr, "workload failed: %s\n",
                 metrics.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", metrics->warm.ToTableString(
                        "WARM RUN (hot-document workload)").c_str());
  std::printf(
      "\nZipfian roots concentrate accesses: buffer hit ratio %.3f "
      "despite the\ndatabase being %.1fx the pool size.\n",
      metrics->warm.buffer_hit_ratio(),
      static_cast<double>(generation->data_pages) /
          static_cast<double>(storage.buffer_pool_pages));
  return 0;
}
