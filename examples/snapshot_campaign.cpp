/// \file snapshot_campaign.cpp
/// \brief A benchmark *campaign* workflow: generate the OCB database
///        once, snapshot it, then reload the identical database for each
///        clustering policy — every policy sees byte-for-byte the same
///        initial placement, the strongest possible comparison basis
///        (paper §1: "compare different algorithms on the same basis").
///
/// Build & run:
///   ./build/examples/snapshot_campaign

#include <cstdio>
#include <memory>
#include <vector>

#include "clustering/dfs_placement.h"
#include "clustering/dstc.h"
#include "clustering/greedy_graph.h"
#include "ocb/experiment.h"
#include "ocb/generator.h"
#include "oodb/snapshot.h"
#include "util/format.h"

int main() {
  using namespace ocb;

  StorageOptions storage;
  storage.buffer_pool_pages = 240;

  OcbPreset preset = presets::DstcClubApprox(/*ref_zone=*/150);
  preset.database.num_objects = 10000;
  preset.database.seed = 501;
  preset.workload.cold_transactions = 100;
  preset.workload.hot_transactions = 150;
  preset.workload.root_pool_size = 8;
  preset.workload.seed = 502;

  const std::string snapshot_path = "/tmp/ocb_campaign.snap";

  // ---- Generate once, snapshot ----
  {
    Database db(storage);
    auto generation = GenerateDatabase(preset.database, &db);
    if (!generation.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   generation.status().ToString().c_str());
      return 1;
    }
    Status st = SaveSnapshot(&db, snapshot_path);
    if (!st.ok()) {
      std::fprintf(stderr, "snapshot failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("generated %llu objects once (%s), snapshot at %s\n\n",
                (unsigned long long)generation->objects_created,
                HumanBytes(generation->database_bytes).c_str(),
                snapshot_path.c_str());
  }

  // ---- Reload per policy ----
  std::vector<std::unique_ptr<ClusteringPolicy>> policies;
  policies.push_back(std::make_unique<NoClustering>());
  policies.push_back(std::make_unique<Dstc>());
  policies.push_back(std::make_unique<GreedyGraphPartitioning>());
  policies.push_back(std::make_unique<DfsPlacement>());

  TextTable table({"Policy", "I/Os before", "I/Os after", "Gain"});
  for (auto& policy : policies) {
    Database db(storage);
    Status st = LoadSnapshot(&db, snapshot_path);
    if (!st.ok()) {
      std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
      return 1;
    }
    auto result =
        RunBeforeAfterOnDatabase(&db, preset.workload, policy.get());
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", policy->name().c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    table.AddRow({result->policy_name,
                  Format("%.1f", result->ios_before()),
                  Format("%.1f", result->ios_after()),
                  Format("%.2f", result->gain_factor())});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nAll four policies started from the *identical* snapshot — the\n"
      "'before' column is the same by construction, so the 'after' column\n"
      "is a pure policy comparison.\n");
  std::remove(snapshot_path.c_str());
  return 0;
}
