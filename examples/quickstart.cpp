/// \file quickstart.cpp
/// \brief OCB in ~60 lines: generate the default database (paper Tables
///        1+2), run the cold/warm workload protocol, and print the
///        metrics the paper reports — response time, objects accessed,
///        and I/O counts, globally and per transaction type.
///
/// Build & run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart

#include <cstdio>

#include "ocb/generator.h"
#include "util/format.h"
#include "ocb/presets.h"
#include "ocb/protocol.h"

int main() {
  using namespace ocb;

  // 1. Configure the storage substrate: 4 KB pages, a 1 MB buffer pool —
  //    small enough that the ~10 MB default database spills, as in the
  //    paper's 8 MB-RAM-vs-15 MB-DB setup.
  StorageOptions storage;
  storage.buffer_pool_pages = 256;

  Database db(storage);

  // 2. Generate the benchmark database. presets::Default() is exactly the
  //    paper's Tables 1 + 2; shrink it here so the quickstart runs in
  //    seconds.
  OcbPreset preset = presets::Default();
  preset.database.num_objects = 5000;
  preset.workload.cold_transactions = 100;   // COLDN
  preset.workload.hot_transactions = 400;    // HOTN

  std::printf("Generating OCB database (%llu objects, %u classes)...\n",
              (unsigned long long)preset.database.num_objects,
              preset.database.num_classes);
  auto generation = GenerateDatabase(preset.database, &db);
  if (!generation.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 generation.status().ToString().c_str());
    return 1;
  }
  std::printf("  %llu objects on %llu pages (%s), %llu references bound\n",
              (unsigned long long)generation->objects_created,
              (unsigned long long)generation->data_pages,
              HumanBytes(generation->database_bytes).c_str(),
              (unsigned long long)generation->references_bound);

  // 3. Cold-start the cache, then run the protocol: COLDN transactions to
  //    reach stationary behaviour, HOTN measured transactions.
  if (!db.ColdRestart().ok()) return 1;
  ProtocolRunner runner(&db, preset.workload);
  auto metrics = runner.Run();
  if (!metrics.ok()) {
    std::fprintf(stderr, "workload failed: %s\n",
                 metrics.status().ToString().c_str());
    return 1;
  }

  // 4. Report, per paper §3.3: response time, objects accessed, and I/Os,
  //    globally and per transaction type.
  std::printf("\n%s", metrics->cold.ToTableString("COLD RUN").c_str());
  std::printf("\n%s", metrics->warm.ToTableString("WARM RUN").c_str());
  std::printf("\nwarm-run mean I/Os per transaction: %.2f\n",
              metrics->warm.mean_ios_per_transaction());
  return 0;
}
